(* Tests for the workload generator. *)

module G = Ccdb_workload.Generator

let check = Alcotest.check

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let make ?(spec = G.default) ?(sites = 4) ?(items = 16) ?(seed = 1) () =
  G.create spec ~sites ~items (Ccdb_util.Rng.create ~seed)

let test_generate_count_and_order () =
  let g = make () in
  let txns = G.generate g ~n:100 ~start:0. in
  check Alcotest.int "count" 100 (List.length txns);
  let rec increasing = function
    | (a, _) :: ((b, _) :: _ as rest) -> a <= b && increasing rest
    | [ _ ] | [] -> true
  in
  check Alcotest.bool "arrival times increase" true (increasing txns);
  (* ids unique and increasing from 1 *)
  let ids = List.map (fun (_, t) -> t.Ccdb_model.Txn.id) txns in
  check (Alcotest.list Alcotest.int) "ids" (List.init 100 (fun i -> i + 1)) ids

let test_generate_respects_sizes () =
  let spec = { G.default with size_min = 2; size_max = 4 } in
  let g = make ~spec () in
  List.iter
    (fun (_, txn) ->
      let size = Ccdb_model.Txn.size txn in
      if size < 2 || size > 4 then Alcotest.failf "size %d out of range" size)
    (G.generate g ~n:200 ~start:0.)

let test_generate_poisson_rate () =
  let spec = { G.default with arrival_rate = 0.5 } in
  let g = make ~spec () in
  let txns = G.generate g ~n:2000 ~start:0. in
  let last, _ = List.nth txns 1999 in
  let measured = 2000. /. last in
  if abs_float (measured -. 0.5) > 0.05 then
    Alcotest.failf "rate off: %f" measured

let test_read_fraction_extremes () =
  let all_reads = { G.default with read_fraction = 1. } in
  let g = make ~spec:all_reads () in
  List.iter
    (fun (_, txn) ->
      check (Alcotest.list Alcotest.int) "no writes" [] txn.Ccdb_model.Txn.write_set)
    (G.generate g ~n:50 ~start:0.);
  let all_writes = { G.default with read_fraction = 0. } in
  let g = make ~spec:all_writes () in
  List.iter
    (fun (_, txn) ->
      check (Alcotest.list Alcotest.int) "no reads" [] txn.Ccdb_model.Txn.read_set)
    (G.generate g ~n:50 ~start:0.)

let test_protocol_mix () =
  let spec =
    { G.default with
      protocol_mix =
        [ (Ccdb_model.Protocol.T_o, 3.); (Ccdb_model.Protocol.Pa, 1.) ] }
  in
  let g = make ~spec () in
  let txns = G.generate g ~n:1000 ~start:0. in
  let count p =
    List.length
      (List.filter
         (fun (_, t) -> Ccdb_model.Protocol.equal t.Ccdb_model.Txn.protocol p)
         txns)
  in
  check Alcotest.int "no 2PL" 0 (count Ccdb_model.Protocol.Two_pl);
  let t_o = count Ccdb_model.Protocol.T_o in
  if t_o < 650 || t_o > 850 then Alcotest.failf "mix skewed: %d" t_o

let test_hotspot_access () =
  let spec =
    { G.default with
      access = G.Hotspot { hot_items = 2; hot_prob = 0.9 };
      size_min = 1; size_max = 1 }
  in
  let g = make ~spec ~items:100 () in
  let txns = G.generate g ~n:1000 ~start:0. in
  let hot =
    List.length
      (List.filter
         (fun (_, t) ->
           List.for_all (fun i -> i < 2) (Ccdb_model.Txn.accesses t |> List.map fst))
         txns)
  in
  if hot < 800 then Alcotest.failf "hotspot not hot: %d" hot

let test_validate_rejects_nonsense () =
  let bad spec msg =
    match G.validate spec ~items:16 with
    | () -> Alcotest.failf "expected failure: %s" msg
    | exception Invalid_argument _ -> ()
  in
  bad { G.default with arrival_rate = 0. } "rate";
  bad { G.default with size_min = 0 } "size_min";
  bad { G.default with size_max = 99 } "size_max";
  bad { G.default with read_fraction = 1.5 } "fraction";
  bad { G.default with protocol_mix = [] } "mix";
  bad { G.default with access = G.Zipf 0. } "zipf"

let test_sites_in_range () =
  let g = make ~sites:3 () in
  List.iter
    (fun (_, txn) ->
      let site = txn.Ccdb_model.Txn.site in
      if site < 0 || site >= 3 then Alcotest.fail "site out of range")
    (G.generate g ~n:200 ~start:0.)

let prop_items_in_range =
  qtest "generated items within the universe" QCheck.(int_range 1 1000)
    (fun seed ->
      let g = make ~seed ~items:8 () in
      List.for_all
        (fun (_, txn) ->
          List.for_all
            (fun (i, _) -> i >= 0 && i < 8)
            (Ccdb_model.Txn.accesses txn))
        (G.generate g ~n:50 ~start:0.))

let prop_deterministic =
  qtest "same seed, same workload" QCheck.(int_range 1 1000)
    (fun seed ->
      let dump g =
        List.map
          (fun (at, t) -> (at, t.Ccdb_model.Txn.id, t.Ccdb_model.Txn.read_set,
                           t.Ccdb_model.Txn.write_set))
          (G.generate g ~n:30 ~start:0.)
      in
      dump (make ~seed ()) = dump (make ~seed ()))

let suites =
  [ ( "workload.generator",
      [ Alcotest.test_case "count and order" `Quick test_generate_count_and_order;
        Alcotest.test_case "sizes" `Quick test_generate_respects_sizes;
        Alcotest.test_case "poisson rate" `Quick test_generate_poisson_rate;
        Alcotest.test_case "read fraction extremes" `Quick test_read_fraction_extremes;
        Alcotest.test_case "protocol mix" `Quick test_protocol_mix;
        Alcotest.test_case "hotspot" `Quick test_hotspot_access;
        Alcotest.test_case "validation" `Quick test_validate_rejects_nonsense;
        Alcotest.test_case "sites in range" `Quick test_sites_in_range;
        prop_items_in_range;
        prop_deterministic ] ) ]
