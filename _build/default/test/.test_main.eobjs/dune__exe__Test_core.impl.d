test/test_core.ml: Alcotest Array Ccdb_model Ccdb_protocols Ccdb_serial Ccdb_sim Ccdb_storage Ccdb_util Core Int List Option QCheck QCheck_alcotest
