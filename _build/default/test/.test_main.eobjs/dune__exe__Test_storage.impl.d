test/test_storage.ml: Alcotest Ccdb_model Ccdb_storage Int List QCheck QCheck_alcotest
