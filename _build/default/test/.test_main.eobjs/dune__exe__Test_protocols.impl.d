test/test_protocols.ml: Alcotest Ccdb_model Ccdb_protocols Ccdb_serial Ccdb_sim Ccdb_storage Ccdb_util Core List QCheck QCheck_alcotest
