test/test_harness.ml: Alcotest Ccdb_harness Ccdb_model Ccdb_util Ccdb_workload Float List Option String
