test/test_model.ml: Alcotest Ccdb_model Format List QCheck QCheck_alcotest
