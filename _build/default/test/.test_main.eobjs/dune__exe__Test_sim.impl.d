test/test_sim.ml: Alcotest Ccdb_sim Ccdb_util List
