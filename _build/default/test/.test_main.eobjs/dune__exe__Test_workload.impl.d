test/test_workload.ml: Alcotest Ccdb_model Ccdb_util Ccdb_workload List QCheck QCheck_alcotest
