test/test_util.ml: Alcotest Array Ccdb_util Float Fun Gen Int List Option QCheck QCheck_alcotest String
