test/test_serial.ml: Alcotest Ccdb_model Ccdb_serial Ccdb_storage Hashtbl List QCheck QCheck_alcotest
