test/test_stl.ml: Alcotest Ccdb_harness Ccdb_model Ccdb_protocols Ccdb_sim Ccdb_stl Ccdb_storage Ccdb_util Ccdb_workload Float Hashtbl List QCheck QCheck_alcotest
