test/test_main.ml: Alcotest Test_core Test_harness Test_model Test_protocols Test_serial Test_sim Test_stl Test_storage Test_util Test_workload
