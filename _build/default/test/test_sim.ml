(* Tests for Ccdb_sim: Engine and Net. *)

let check = Alcotest.check

(* --- Engine ------------------------------------------------------------- *)

let test_engine_order () =
  let e = Ccdb_sim.Engine.create () in
  let trace = ref [] in
  let record tag () = trace := tag :: !trace in
  ignore (Ccdb_sim.Engine.schedule e ~after:3. (record "c"));
  ignore (Ccdb_sim.Engine.schedule e ~after:1. (record "a"));
  ignore (Ccdb_sim.Engine.schedule e ~after:2. (record "b"));
  Ccdb_sim.Engine.run e;
  check (Alcotest.list Alcotest.string) "time order" [ "a"; "b"; "c" ]
    (List.rev !trace);
  check (Alcotest.float 1e-9) "clock" 3. (Ccdb_sim.Engine.now e)

let test_engine_fifo_ties () =
  let e = Ccdb_sim.Engine.create () in
  let trace = ref [] in
  for i = 1 to 5 do
    ignore
      (Ccdb_sim.Engine.schedule e ~after:1. (fun () -> trace := i :: !trace))
  done;
  Ccdb_sim.Engine.run e;
  check (Alcotest.list Alcotest.int) "schedule order" [ 1; 2; 3; 4; 5 ]
    (List.rev !trace)

let test_engine_nested_schedule () =
  let e = Ccdb_sim.Engine.create () in
  let trace = ref [] in
  ignore
    (Ccdb_sim.Engine.schedule e ~after:1. (fun () ->
         trace := "outer" :: !trace;
         ignore
           (Ccdb_sim.Engine.schedule e ~after:1. (fun () ->
                trace := "inner" :: !trace))));
  Ccdb_sim.Engine.run e;
  check (Alcotest.list Alcotest.string) "nested" [ "outer"; "inner" ]
    (List.rev !trace);
  check (Alcotest.float 1e-9) "clock" 2. (Ccdb_sim.Engine.now e)

let test_engine_cancel () =
  let e = Ccdb_sim.Engine.create () in
  let fired = ref false in
  let h = Ccdb_sim.Engine.schedule e ~after:1. (fun () -> fired := true) in
  check Alcotest.bool "cancelled" true (Ccdb_sim.Engine.cancel e h);
  check Alcotest.bool "idempotent" false (Ccdb_sim.Engine.cancel e h);
  Ccdb_sim.Engine.run e;
  check Alcotest.bool "not fired" false !fired

let test_engine_until () =
  let e = Ccdb_sim.Engine.create () in
  let fired = ref [] in
  ignore (Ccdb_sim.Engine.schedule e ~after:1. (fun () -> fired := 1 :: !fired));
  ignore (Ccdb_sim.Engine.schedule e ~after:5. (fun () -> fired := 5 :: !fired));
  Ccdb_sim.Engine.run ~until:2. e;
  check (Alcotest.list Alcotest.int) "only early" [ 1 ] (List.rev !fired);
  check (Alcotest.float 1e-9) "clamped clock" 2. (Ccdb_sim.Engine.now e);
  check Alcotest.int "pending" 1 (Ccdb_sim.Engine.pending e);
  Ccdb_sim.Engine.run e;
  check (Alcotest.list Alcotest.int) "rest" [ 1; 5 ] (List.rev !fired)

let test_engine_max_events () =
  let e = Ccdb_sim.Engine.create () in
  for i = 1 to 10 do
    ignore (Ccdb_sim.Engine.schedule e ~after:(float_of_int i) ignore)
  done;
  Ccdb_sim.Engine.run ~max_events:4 e;
  check Alcotest.int "processed" 4 (Ccdb_sim.Engine.processed e);
  check Alcotest.int "pending" 6 (Ccdb_sim.Engine.pending e)

let test_engine_negative_delay () =
  let e = Ccdb_sim.Engine.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Engine.schedule: negative delay")
    (fun () -> ignore (Ccdb_sim.Engine.schedule e ~after:(-1.) ignore))

let test_engine_past_schedule_at () =
  let e = Ccdb_sim.Engine.create () in
  ignore (Ccdb_sim.Engine.schedule e ~after:5. ignore);
  Ccdb_sim.Engine.run e;
  Alcotest.check_raises "past" (Invalid_argument "Engine.schedule_at: time in the past")
    (fun () -> ignore (Ccdb_sim.Engine.schedule_at e ~at:1. ignore))

let test_engine_step () =
  let e = Ccdb_sim.Engine.create () in
  check Alcotest.bool "empty step" false (Ccdb_sim.Engine.step e);
  ignore (Ccdb_sim.Engine.schedule e ~after:1. ignore);
  check Alcotest.bool "step" true (Ccdb_sim.Engine.step e);
  check Alcotest.bool "drained" false (Ccdb_sim.Engine.step e)

(* --- Net ---------------------------------------------------------------- *)

let make_net ?(sites = 3) ?(jitter = 0.) () =
  let e = Ccdb_sim.Engine.create () in
  let rng = Ccdb_util.Rng.create ~seed:1 in
  let config =
    { Ccdb_sim.Net.sites; base_delay = 10.; jitter; local_delay = 0.1 }
  in
  (e, Ccdb_sim.Net.create e rng config)

let test_net_delivery_delay () =
  let e, net = make_net () in
  let delivered_at = ref (-1.) in
  Ccdb_sim.Net.send net ~src:0 ~dst:1 ~kind:"m" (fun () ->
      delivered_at := Ccdb_sim.Engine.now e);
  Ccdb_sim.Engine.run e;
  check (Alcotest.float 1e-9) "base delay" 10. !delivered_at

let test_net_local_delay () =
  let e, net = make_net () in
  let delivered_at = ref (-1.) in
  Ccdb_sim.Net.send net ~src:2 ~dst:2 ~kind:"m" (fun () ->
      delivered_at := Ccdb_sim.Engine.now e);
  Ccdb_sim.Engine.run e;
  check (Alcotest.float 1e-9) "local delay" 0.1 !delivered_at

let test_net_counts () =
  let e, net = make_net () in
  Ccdb_sim.Net.send net ~src:0 ~dst:1 ~kind:"a" ignore;
  Ccdb_sim.Net.send net ~src:0 ~dst:1 ~kind:"a" ignore;
  Ccdb_sim.Net.send net ~src:1 ~dst:0 ~kind:"b" ignore;
  Ccdb_sim.Engine.run e;
  check Alcotest.int "total" 3 (Ccdb_sim.Net.messages_sent net);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "by kind"
    [ ("a", 2); ("b", 1) ]
    (Ccdb_sim.Net.messages_by_kind net);
  Ccdb_sim.Net.reset_counters net;
  check Alcotest.int "reset" 0 (Ccdb_sim.Net.messages_sent net)

let test_net_fifo_per_channel () =
  (* with jitter, later sends could overtake earlier ones; the channel must
     stay FIFO *)
  let e, net = make_net ~jitter:8. () in
  let trace = ref [] in
  for i = 1 to 20 do
    Ccdb_sim.Net.send net ~src:0 ~dst:1 ~kind:"m" (fun () ->
        trace := i :: !trace)
  done;
  Ccdb_sim.Engine.run e;
  check (Alcotest.list Alcotest.int) "fifo" (List.init 20 (fun i -> i + 1))
    (List.rev !trace)

let test_net_bad_site () =
  let _, net = make_net () in
  Alcotest.check_raises "range" (Invalid_argument "Net.send: site out of range")
    (fun () -> Ccdb_sim.Net.send net ~src:0 ~dst:9 ~kind:"m" ignore)

let suites =
  [ ( "sim.engine",
      [ Alcotest.test_case "time order" `Quick test_engine_order;
        Alcotest.test_case "fifo ties" `Quick test_engine_fifo_ties;
        Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule;
        Alcotest.test_case "cancel" `Quick test_engine_cancel;
        Alcotest.test_case "run until" `Quick test_engine_until;
        Alcotest.test_case "max events" `Quick test_engine_max_events;
        Alcotest.test_case "negative delay" `Quick test_engine_negative_delay;
        Alcotest.test_case "schedule in past" `Quick test_engine_past_schedule_at;
        Alcotest.test_case "step" `Quick test_engine_step ] );
    ( "sim.net",
      [ Alcotest.test_case "remote delay" `Quick test_net_delivery_delay;
        Alcotest.test_case "local delay" `Quick test_net_local_delay;
        Alcotest.test_case "message counts" `Quick test_net_counts;
        Alcotest.test_case "fifo per channel" `Quick test_net_fifo_per_channel;
        Alcotest.test_case "bad site" `Quick test_net_bad_site ] ) ]

(* --- failure injection ------------------------------------------------------- *)

let test_net_slowdown_window () =
  let e, net = make_net () in
  Ccdb_sim.Net.inject_slowdown net ~from_time:0. ~until_time:5. ~factor:3. ;
  let t1 = ref 0. and t2 = ref 0. in
  (* sent inside the window: 3x delay *)
  Ccdb_sim.Net.send net ~src:0 ~dst:1 ~kind:"m" (fun () ->
      t1 := Ccdb_sim.Engine.now e);
  (* a message sent after the window closes travels at normal speed *)
  ignore
    (Ccdb_sim.Engine.schedule e ~after:6. (fun () ->
         Ccdb_sim.Net.send net ~src:1 ~dst:0 ~kind:"m" (fun () ->
             t2 := Ccdb_sim.Engine.now e)));
  Ccdb_sim.Engine.run e;
  check (Alcotest.float 1e-9) "slowed" 30. !t1;
  check (Alcotest.float 1e-9) "normal after window" 16. !t2

let test_net_site_slowdown () =
  let e, net = make_net () in
  Ccdb_sim.Net.inject_site_slowdown net ~site:2 ~from_time:0. ~until_time:100.
    ~factor:5.;
  let slow = ref 0. and fast = ref 0. in
  Ccdb_sim.Net.send net ~src:0 ~dst:2 ~kind:"m" (fun () ->
      slow := Ccdb_sim.Engine.now e);
  Ccdb_sim.Net.send net ~src:0 ~dst:1 ~kind:"m" (fun () ->
      fast := Ccdb_sim.Engine.now e);
  Ccdb_sim.Engine.run e;
  check (Alcotest.float 1e-9) "affected site" 50. !slow;
  check (Alcotest.float 1e-9) "other channel" 10. !fast

let test_net_slowdown_validation () =
  let _, net = make_net () in
  Alcotest.check_raises "bad window"
    (Invalid_argument "Net.inject_slowdown: bad time window") (fun () ->
      Ccdb_sim.Net.inject_slowdown net ~from_time:5. ~until_time:5. ~factor:2.);
  Alcotest.check_raises "bad factor"
    (Invalid_argument "Net.inject_slowdown: factor < 1") (fun () ->
      Ccdb_sim.Net.inject_slowdown net ~from_time:0. ~until_time:1. ~factor:0.5)

let suites =
  suites
  @ [ ( "sim.failure_injection",
        [ Alcotest.test_case "slowdown window" `Quick test_net_slowdown_window;
          Alcotest.test_case "site slowdown" `Quick test_net_site_slowdown;
          Alcotest.test_case "validation" `Quick test_net_slowdown_validation ] ) ]
