(* Tests for Ccdb_storage: Catalog and Store. *)

let check = Alcotest.check

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* --- Catalog ------------------------------------------------------------ *)

let test_catalog_shape () =
  let c = Ccdb_storage.Catalog.create ~items:10 ~sites:4 ~replication:2 in
  check Alcotest.int "items" 10 (Ccdb_storage.Catalog.items c);
  check Alcotest.int "sites" 4 (Ccdb_storage.Catalog.sites c);
  for item = 0 to 9 do
    let copies = Ccdb_storage.Catalog.copies c item in
    check Alcotest.int "replication" 2 (List.length copies);
    check
      (Alcotest.list Alcotest.int)
      "sorted distinct" copies
      (List.sort_uniq Int.compare copies)
  done

let test_catalog_full_replication () =
  let c = Ccdb_storage.Catalog.create ~items:3 ~sites:3 ~replication:3 in
  for item = 0 to 2 do
    check (Alcotest.list Alcotest.int) "all sites" [ 0; 1; 2 ]
      (Ccdb_storage.Catalog.copies c item)
  done

let test_catalog_read_site_local () =
  let c = Ccdb_storage.Catalog.create ~items:8 ~sites:4 ~replication:2 in
  for item = 0 to 7 do
    List.iter
      (fun site ->
        check Alcotest.int "prefers local copy" site
          (Ccdb_storage.Catalog.read_site c ~preferred:site item))
      (Ccdb_storage.Catalog.copies c item)
  done

let test_catalog_read_site_remote () =
  let c = Ccdb_storage.Catalog.create ~items:8 ~sites:4 ~replication:1 in
  for item = 0 to 7 do
    for site = 0 to 3 do
      let rs = Ccdb_storage.Catalog.read_site c ~preferred:site item in
      check Alcotest.bool "holds a copy" true
        (Ccdb_storage.Catalog.has_copy c ~item ~site:rs)
    done
  done

let test_catalog_invalid () =
  Alcotest.check_raises "replication too big"
    (Invalid_argument "Catalog.create: replication out of range") (fun () ->
      ignore (Ccdb_storage.Catalog.create ~items:1 ~sites:2 ~replication:3))

let prop_catalog_all_copies =
  qtest "catalog: all_copies consistent with copies"
    QCheck.(triple (int_range 1 20) (int_range 1 6) (int_range 1 6))
    (fun (items, sites, repl) ->
      let repl = min repl sites in
      let c = Ccdb_storage.Catalog.create ~items ~sites ~replication:repl in
      let all = Ccdb_storage.Catalog.all_copies c in
      List.length all = items * repl
      && List.for_all
           (fun (item, site) -> Ccdb_storage.Catalog.has_copy c ~item ~site)
           all)

(* --- Store -------------------------------------------------------------- *)

let make_store () =
  let c = Ccdb_storage.Catalog.create ~items:4 ~sites:2 ~replication:2 in
  Ccdb_storage.Store.create c

let test_store_initial () =
  let s = make_store () in
  check Alcotest.int "initial value" 0 (Ccdb_storage.Store.read s ~item:0 ~site:0);
  check Alcotest.int "initial writer" (-1)
    (Ccdb_storage.Store.writer_of s ~item:0 ~site:0);
  check Alcotest.int "no log" 0
    (List.length (Ccdb_storage.Store.log s ~item:0 ~site:0))

let test_store_write_read () =
  let s = make_store () in
  Ccdb_storage.Store.apply_write s ~item:1 ~site:0 ~txn:7 ~value:42 ~at:1.0;
  check Alcotest.int "value" 42 (Ccdb_storage.Store.read s ~item:1 ~site:0);
  check Alcotest.int "writer" 7 (Ccdb_storage.Store.writer_of s ~item:1 ~site:0);
  (* the other copy is untouched: writes are per physical copy *)
  check Alcotest.int "other copy" 0 (Ccdb_storage.Store.read s ~item:1 ~site:1)

let test_store_log_order () =
  let s = make_store () in
  Ccdb_storage.Store.log_read s ~item:2 ~site:0 ~txn:1 ~at:1.0;
  Ccdb_storage.Store.apply_write s ~item:2 ~site:0 ~txn:2 ~value:5 ~at:2.0;
  Ccdb_storage.Store.log_read s ~item:2 ~site:0 ~txn:3 ~at:3.0;
  let log = Ccdb_storage.Store.log s ~item:2 ~site:0 in
  check (Alcotest.list Alcotest.int) "txn order" [ 1; 2; 3 ]
    (List.map (fun (e : Ccdb_storage.Store.log_entry) -> e.txn) log);
  check (Alcotest.list Alcotest.bool) "kinds" [ false; true; false ]
    (List.map
       (fun (e : Ccdb_storage.Store.log_entry) ->
         Ccdb_model.Op.equal e.kind Ccdb_model.Op.Write)
       log)

let test_store_versions () =
  let s = make_store () in
  Ccdb_storage.Store.apply_write s ~item:0 ~site:1 ~txn:1 ~value:10 ~at:1.0;
  Ccdb_storage.Store.apply_write s ~item:0 ~site:1 ~txn:2 ~value:20 ~at:2.0;
  check
    (Alcotest.list (Alcotest.triple Alcotest.int Alcotest.int (Alcotest.float 1e-9)))
    "history"
    [ (-1, 0, 0.); (1, 10, 1.0); (2, 20, 2.0) ]
    (Ccdb_storage.Store.versions s ~item:0 ~site:1)

let test_store_missing_copy () =
  let c = Ccdb_storage.Catalog.create ~items:2 ~sites:3 ~replication:1 in
  let s = Ccdb_storage.Store.create c in
  let copies = Ccdb_storage.Catalog.copies c 0 in
  let absent = List.find (fun site -> not (List.mem site copies)) [ 0; 1; 2 ] in
  Alcotest.check_raises "no copy" (Invalid_argument "Store: no such physical copy")
    (fun () -> ignore (Ccdb_storage.Store.read s ~item:0 ~site:absent))

let test_store_logs_cover_all_copies () =
  let s = make_store () in
  let logs = Ccdb_storage.Store.logs s in
  check Alcotest.int "one log per copy" 8 (List.length logs)

let suites =
  [ ( "storage.catalog",
      [ Alcotest.test_case "shape" `Quick test_catalog_shape;
        Alcotest.test_case "full replication" `Quick test_catalog_full_replication;
        Alcotest.test_case "read_site local" `Quick test_catalog_read_site_local;
        Alcotest.test_case "read_site remote" `Quick test_catalog_read_site_remote;
        Alcotest.test_case "invalid" `Quick test_catalog_invalid;
        prop_catalog_all_copies ] );
    ( "storage.store",
      [ Alcotest.test_case "initial" `Quick test_store_initial;
        Alcotest.test_case "write/read" `Quick test_store_write_read;
        Alcotest.test_case "log order" `Quick test_store_log_order;
        Alcotest.test_case "versions" `Quick test_store_versions;
        Alcotest.test_case "missing copy" `Quick test_store_missing_copy;
        Alcotest.test_case "logs per copy" `Quick test_store_logs_cover_all_copies ] ) ]
