module Imap = Map.Make (Int)
module Iset = Set.Make (Int)

module Edge_set = Set.Make (struct
  type t = int * int

  let compare = compare
end)

type t = {
  node_set : Iset.t;
  edge_set : Edge_set.t;
  succ : Iset.t Imap.t;
}

let build node_set edge_set =
  let succ =
    Edge_set.fold
      (fun (a, b) acc ->
        let cur = Option.value ~default:Iset.empty (Imap.find_opt a acc) in
        Imap.add a (Iset.add b cur) acc)
      edge_set Imap.empty
  in
  { node_set; edge_set; succ }

let of_edges ~nodes ~edges =
  let node_set =
    List.fold_left
      (fun acc (a, b) -> Iset.add a (Iset.add b acc))
      (Iset.of_list nodes) edges
  in
  let edge_set =
    List.fold_left
      (fun acc (a, b) -> if a = b then acc else Edge_set.add (a, b) acc)
      Edge_set.empty edges
  in
  build node_set edge_set

let of_logs logs =
  let nodes = ref Iset.empty in
  let edges = ref Edge_set.empty in
  let scan_log entries =
    (* For each entry, add edges from every earlier conflicting entry of a
       different transaction. *)
    let rec loop earlier = function
      | [] -> ()
      | (e : Ccdb_storage.Store.log_entry) :: rest ->
        nodes := Iset.add e.txn !nodes;
        List.iter
          (fun (e' : Ccdb_storage.Store.log_entry) ->
            if e'.txn <> e.txn && Ccdb_model.Op.conflicts e'.kind e.kind then
              edges := Edge_set.add (e'.txn, e.txn) !edges)
          earlier;
        loop (e :: earlier) rest
    in
    loop [] entries
  in
  List.iter (fun (_copy, entries) -> scan_log entries) logs;
  build !nodes !edges

let nodes t = Iset.elements t.node_set
let edges t = Edge_set.elements t.edge_set

let successors t n =
  Option.value ~default:Iset.empty (Imap.find_opt n t.succ)

(* Iterative DFS with colouring; returns a witness cycle when found. *)
let find_cycle t =
  let state = Hashtbl.create 64 in
  (* 0 = unvisited (absent), 1 = on stack, 2 = done *)
  let cycle = ref None in
  let rec visit path n =
    match Hashtbl.find_opt state n with
    | Some 2 -> ()
    | Some 1 ->
      (* found a back edge: extract the cycle from the path *)
      if !cycle = None then begin
        let rec take acc = function
          | [] -> acc
          | x :: rest -> if x = n then x :: acc else take (x :: acc) rest
        in
        cycle := Some (take [] path)
      end
    | Some _ | None ->
      Hashtbl.replace state n 1;
      Iset.iter
        (fun m -> if !cycle = None then visit (n :: path) m)
        (successors t n);
      Hashtbl.replace state n 2
  in
  Iset.iter (fun n -> if !cycle = None then visit [] n) t.node_set;
  !cycle

let has_cycle t = Option.is_some (find_cycle t)

let topological_order t =
  let indeg = Hashtbl.create 64 in
  Iset.iter (fun n -> Hashtbl.replace indeg n 0) t.node_set;
  Edge_set.iter
    (fun (_, b) ->
      Hashtbl.replace indeg b (1 + Option.value ~default:0 (Hashtbl.find_opt indeg b)))
    t.edge_set;
  (* smallest-id-first frontier for a deterministic order *)
  let frontier = ref Iset.empty in
  Hashtbl.iter (fun n d -> if d = 0 then frontier := Iset.add n !frontier) indeg;
  let order = ref [] in
  let count = ref 0 in
  while not (Iset.is_empty !frontier) do
    let n = Iset.min_elt !frontier in
    frontier := Iset.remove n !frontier;
    order := n :: !order;
    incr count;
    Iset.iter
      (fun m ->
        let d = Hashtbl.find indeg m - 1 in
        Hashtbl.replace indeg m d;
        if d = 0 then frontier := Iset.add m !frontier)
      (successors t n)
  done;
  if !count = Iset.cardinal t.node_set then Some (List.rev !order) else None
