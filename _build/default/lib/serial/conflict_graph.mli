(** Conflict graphs over executed transactions.

    Built from the per-copy implementation logs: there is an edge
    [ti -> tj] when a pair of conflicting operations from distinct
    transactions appears in some log with [ti]'s operation first.  The
    execution is conflict serializable iff this graph is acyclic
    (Theorem 1 / section 4.3 of the paper). *)

type t

val of_logs : (Ccdb_storage.Store.copy * Ccdb_storage.Store.log_entry list) list -> t

val of_edges : nodes:int list -> edges:(int * int) list -> t
(** Build directly (used by tests and by the deadlock-detector tests). *)

val nodes : t -> int list
(** Sorted transaction ids appearing in any log. *)

val edges : t -> (int * int) list
(** Deduplicated, lexicographically sorted; self-edges are never included. *)

val has_cycle : t -> bool

val find_cycle : t -> int list option
(** Some witness cycle [t1; t2; ...; tk] with an edge from each element to
    the next and from [tk] back to [t1]; [None] when acyclic. *)

val topological_order : t -> int list option
(** A serialization order (Kahn's algorithm, smallest-id-first for
    determinism); [None] when cyclic. *)
