lib/serial/conflict_graph.mli: Ccdb_storage
