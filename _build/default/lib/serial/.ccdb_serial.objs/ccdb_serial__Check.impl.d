lib/serial/check.ml: Ccdb_model Ccdb_storage Conflict_graph Hashtbl List
