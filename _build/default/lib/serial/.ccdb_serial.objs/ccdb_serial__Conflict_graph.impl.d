lib/serial/conflict_graph.ml: Ccdb_model Ccdb_storage Hashtbl Int List Map Option Set
