lib/serial/check.mli: Ccdb_storage
