lib/harness/metrics.ml: Array Ccdb_model Ccdb_protocols Ccdb_serial Ccdb_sim Ccdb_storage Ccdb_util Float Hashtbl List
