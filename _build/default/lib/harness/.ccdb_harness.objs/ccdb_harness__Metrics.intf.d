lib/harness/metrics.mli: Ccdb_model Ccdb_protocols Ccdb_util
