lib/harness/driver.ml: Array Ccdb_model Ccdb_protocols Ccdb_sim Ccdb_storage Ccdb_util Ccdb_workload Core Hashtbl List Metrics Option
