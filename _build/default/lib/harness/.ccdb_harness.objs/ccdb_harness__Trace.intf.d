lib/harness/trace.mli: Ccdb_protocols
