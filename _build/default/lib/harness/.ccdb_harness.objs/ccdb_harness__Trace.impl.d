lib/harness/trace.ml: Ccdb_model Ccdb_protocols Format List Printf String
