lib/harness/experiments.mli: Ccdb_util
