lib/harness/experiments.ml: Buffer Ccdb_model Ccdb_protocols Ccdb_sim Ccdb_stl Ccdb_storage Ccdb_util Ccdb_workload Core Driver Float List Metrics Option Printf String
