lib/harness/driver.mli: Ccdb_model Ccdb_protocols Ccdb_sim Ccdb_workload Metrics
