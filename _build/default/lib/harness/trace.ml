module Rt = Ccdb_protocols.Runtime

type t = { mutable events : Rt.event list (* newest first *) }

let attach rt =
  let t = { events = [] } in
  Rt.subscribe rt (fun e -> t.events <- e :: t.events);
  t

let events t = List.rev t.events
let count t = List.length t.events

let pp_event ppf (e : Rt.event) =
  match e with
  | Rt.Lock_granted { txn; protocol; op; item; site; at } ->
    Format.fprintf ppf "%8.1f  grant    t%d [%a] %a(item%d@@s%d)" at txn
      Ccdb_model.Protocol.pp protocol Ccdb_model.Op.pp op item site
  | Rt.Lock_released { txn; protocol; op; item; site; at; aborted; granted_at } ->
    Format.fprintf ppf "%8.1f  %s  t%d [%a] %a(item%d@@s%d) held %.1f" at
      (if aborted then "abort  " else "release")
      txn Ccdb_model.Protocol.pp protocol Ccdb_model.Op.pp op item site
      (at -. granted_at)
  | Rt.Txn_committed { txn; submitted_at; executed_at; restarts } ->
    Format.fprintf ppf "%8.1f  commit   t%d [%a] after %d restarts (S=%.1f)"
      executed_at txn.id Ccdb_model.Protocol.pp txn.protocol restarts
      (executed_at -. submitted_at)
  | Rt.Txn_restarted { txn; reason; at } ->
    let why =
      match reason with
      | Rt.To_rejected op ->
        Printf.sprintf "%s request rejected" (Ccdb_model.Op.to_string op)
      | Rt.Deadlock_victim -> "deadlock victim"
      | Rt.Prevention_kill -> "prevention kill"
    in
    Format.fprintf ppf "%8.1f  restart  t%d [%a] (%s)" at txn.id
      Ccdb_model.Protocol.pp txn.protocol why
  | Rt.Pa_backoff { txn; op; at } ->
    Format.fprintf ppf "%8.1f  backoff  t%d %a request" at txn
      Ccdb_model.Op.pp op

let render ?limit t =
  let evs = events t in
  let evs =
    match limit with
    | Some n when List.length evs > n ->
      let skip = List.length evs - n in
      List.filteri (fun i _ -> i >= skip) evs
    | Some _ | None -> evs
  in
  String.concat "\n" (List.map (Format.asprintf "%a" pp_event) evs)
