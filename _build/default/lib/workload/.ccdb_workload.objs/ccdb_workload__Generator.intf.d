lib/workload/generator.mli: Ccdb_model Ccdb_util Format
