lib/workload/generator.ml: Ccdb_model Ccdb_util Format List
