lib/storage/catalog.mli:
