lib/storage/catalog.ml: Array Int List
