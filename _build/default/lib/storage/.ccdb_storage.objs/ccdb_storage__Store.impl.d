lib/storage/store.ml: Catalog Ccdb_model Hashtbl List
