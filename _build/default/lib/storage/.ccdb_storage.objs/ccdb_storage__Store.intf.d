lib/storage/store.mli: Catalog Ccdb_model
