(** Replica catalog: which sites hold a physical copy of each logical item.

    Placement is deterministic (round-robin over sites starting at
    [item mod sites]) so that a run depends only on (config, seed).  Replica
    control is read-one / write-all: a logical read turns into one physical
    read request (the local copy when present, otherwise the first copy); a
    logical write turns into one physical write request per copy. *)

type t

val create : items:int -> sites:int -> replication:int -> t
(** @raise Invalid_argument unless
    [0 < items], [0 < sites], [0 < replication <= sites]. *)

val items : t -> int
val sites : t -> int
val replication : t -> int

val copies : t -> int -> int list
(** [copies t item] is the sorted list of sites holding a copy.
    @raise Invalid_argument on an out-of-range item. *)

val has_copy : t -> item:int -> site:int -> bool

val read_site : t -> preferred:int -> int -> int
(** [read_site t ~preferred item] is the site a read of [item] issued at
    [preferred] should target: [preferred] itself when it holds a copy,
    otherwise the copy whose site id follows [preferred] cyclically (a cheap
    deterministic stand-in for "nearest copy"). *)

val all_copies : t -> (int * int) list
(** Every physical copy as an [(item, site)] pair, lexicographically. *)
