type copy = int * int

type log_entry = { txn : int; kind : Ccdb_model.Op.kind; at : float }

type cell = {
  mutable value : int;
  mutable writer : int;
  mutable history : (int * int * float) list; (* newest first *)
  mutable log : log_entry list;               (* newest first *)
}

type t = { catalog : Catalog.t; cells : (copy, cell) Hashtbl.t }

let create catalog =
  let cells = Hashtbl.create 256 in
  List.iter
    (fun copy ->
      Hashtbl.add cells copy
        { value = 0; writer = -1; history = [ (-1, 0, 0.) ]; log = [] })
    (Catalog.all_copies catalog);
  { catalog; cells }

let catalog t = t.catalog

let cell t ~item ~site =
  match Hashtbl.find_opt t.cells (item, site) with
  | Some c -> c
  | None -> invalid_arg "Store: no such physical copy"

let read t ~item ~site = (cell t ~item ~site).value
let writer_of t ~item ~site = (cell t ~item ~site).writer

let apply_write t ~item ~site ~txn ~value ~at =
  let c = cell t ~item ~site in
  c.value <- value;
  c.writer <- txn;
  c.history <- (txn, value, at) :: c.history;
  c.log <- { txn; kind = Ccdb_model.Op.Write; at } :: c.log

let log_read t ~item ~site ~txn ~at =
  let c = cell t ~item ~site in
  c.log <- { txn; kind = Ccdb_model.Op.Read; at } :: c.log

let discard_reads t ~item ~site ~txn =
  let c = cell t ~item ~site in
  c.log <-
    List.filter
      (fun e -> not (e.txn = txn && e.kind = Ccdb_model.Op.Read))
      c.log

let log t ~item ~site = List.rev (cell t ~item ~site).log

let logs t =
  Catalog.all_copies t.catalog
  |> List.map (fun (item, site) -> ((item, site), log t ~item ~site))

let versions t ~item ~site = List.rev (cell t ~item ~site).history
