type t = {
  items : int;
  sites : int;
  replication : int;
  placement : int list array; (* item -> sorted sites *)
}

let create ~items ~sites ~replication =
  if items <= 0 then invalid_arg "Catalog.create: items <= 0";
  if sites <= 0 then invalid_arg "Catalog.create: sites <= 0";
  if replication <= 0 || replication > sites then
    invalid_arg "Catalog.create: replication out of range";
  let placement =
    Array.init items (fun item ->
        List.init replication (fun k -> (item + k) mod sites)
        |> List.sort_uniq Int.compare)
  in
  { items; sites; replication; placement }

let items t = t.items
let sites t = t.sites
let replication t = t.replication

let copies t item =
  if item < 0 || item >= t.items then invalid_arg "Catalog.copies: bad item";
  t.placement.(item)

let has_copy t ~item ~site = List.mem site (copies t item)

let read_site t ~preferred item =
  let sites = copies t item in
  if List.mem preferred sites then preferred
  else
    (* first copy at or after [preferred], cyclically *)
    match List.find_opt (fun s -> s > preferred) sites with
    | Some s -> s
    | None -> List.hd sites

let all_copies t =
  List.concat
    (List.init t.items (fun item ->
         List.map (fun site -> (item, site)) t.placement.(item)))
