type params = {
  lambda_a : float;
  lambda_r : float;
  lambda_w : float;
  q_r : float;
  k : float;
}

let validate p =
  if p.lambda_a <= 0. then invalid_arg "Stl_model: lambda_a must be positive";
  if p.lambda_r < 0. || p.lambda_w < 0. then
    invalid_arg "Stl_model: negative queue rate";
  if p.q_r < 0. || p.q_r > 1. then invalid_arg "Stl_model: q_r out of [0,1]";
  if p.k < 1. then invalid_arg "Stl_model: k must be >= 1"

let delta p = p.lambda_w +. ((1. -. p.q_r) *. p.lambda_r)

let lambda_block p ~lambda_loss =
  if lambda_loss <= 0. then 0.
  else if lambda_loss >= p.lambda_a then 0.
  else begin
    let block_prob = lambda_loss /. p.lambda_a in
    (p.lambda_a -. lambda_loss)
    *. (1. -. ((1. -. block_prob) ** (p.k -. 1.)))
  end

let stl' ?(grid = 32) ?(max_levels = 40) p ~lambda_loss ~u =
  validate p;
  if lambda_loss < 0. then invalid_arg "Stl_model.stl': negative lambda_loss";
  if u < 0. then invalid_arg "Stl_model.stl': negative u";
  if u = 0. then 0.
  else if lambda_loss >= p.lambda_a then p.lambda_a *. u
  else begin
    let d = delta p in
    (* number of loss levels until saturation *)
    let levels =
      if d <= 0. then 1
      else
        min max_levels
          (1 + int_of_float (ceil ((p.lambda_a -. lambda_loss) /. d)))
    in
    let du = u /. float_of_int grid in
    (* f.(i).(j) = STL' at loss level lambda_loss + i*d, horizon j*du.
       Levels at or beyond the cap saturate to lambda_a * u. *)
    let saturated j = p.lambda_a *. (float_of_int j *. du) in
    let f = Array.make_matrix (levels + 1) (grid + 1) 0. in
    for j = 0 to grid do
      f.(levels).(j) <- saturated j
    done;
    for i = levels - 1 downto 0 do
      let l = lambda_loss +. (float_of_int i *. d) in
      if l >= p.lambda_a then
        for j = 0 to grid do
          f.(i).(j) <- saturated j
        done
      else begin
        let b = lambda_block p ~lambda_loss:l in
        if b <= 0. then
          (* no further blocking can occur: loss stays constant *)
          for j = 0 to grid do
            f.(i).(j) <- l *. float_of_int j *. du
          done
        else
          for j = 1 to grid do
            let x = float_of_int j *. du in
            (* term 1: no blocking event before x, plus the E[l * min(X,x)]
               mass: closed form
                 e^{-bx} l x + l * (1 - e^{-bx}(1+bx)) / b
               (the second part is the integral of b e^{-bs} l s over
               [0,x]) *)
            let no_block = exp (-.b *. x) *. l *. x in
            let ramp = l *. (1. -. (exp (-.b *. x) *. (1. +. (b *. x)))) /. b in
            (* term 2: continuation after the first blocking event at s:
               integral of b e^{-bs} f_{i+1}(x - s) ds, trapezoid on the
               shared grid *)
            let integrand idx =
              let s = float_of_int idx *. du in
              b *. exp (-.b *. s) *. f.(i + 1).(j - idx)
            in
            let cont = ref 0. in
            for idx = 0 to j - 1 do
              cont := !cont +. ((integrand idx +. integrand (idx + 1)) *. du /. 2.)
            done;
            let v = no_block +. ramp +. !cont in
            (* clamp into the provable envelope *)
            f.(i).(j) <- Float.min (p.lambda_a *. x) (Float.max (l *. x *. exp (-.b *. x)) v)
          done
      end
    done;
    f.(0).(grid)
  end
