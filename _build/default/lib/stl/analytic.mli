(** Analytical parameter estimation (section 5.2's second option: the STL
    inputs "can either be collected periodically or estimated through
    analytical methods", citing Sevcik [14], Shyu & Li [15], Tay, Suri &
    Goodman [21]).

    Closed-form first-order approximations of every quantity the selector
    needs, computed from a workload description alone — no observation.
    Used to seed the dynamic system before any transaction has run, and as
    an independent sanity check on the online estimator.

    The approximations (documented per function) are deliberately simple,
    mean-value style:

    - per-copy throughputs from the arrival rate and the access pattern
      assuming uniform access;
    - lock-hold times from network round trips, compute time, and an
      M/M/1-style waiting factor [1 / (1 - rho)] at the bottleneck copy;
    - 2PL deadlock probability from the classic quadratic waiting argument
      (two waiters colliding head-on);
    - T/O rejection and PA back-off probabilities from the rate of
      conflicting grants falling inside the request's vulnerability window
      (one network delay for requests sent up front; the whole read+compute
      phase for prewrites). *)

type workload = {
  arrival_rate : float;     (** transactions per time unit *)
  mean_size : float;        (** logical items accessed per transaction *)
  read_fraction : float;
  items : int;
  replication : int;
  sites : int;
  one_way_delay : float;    (** mean network delay between distinct sites *)
  compute_mean : float;
}

val of_spec :
  Ccdb_workload.Generator.spec ->
  setup_items:int ->
  setup_replication:int ->
  setup_sites:int ->
  one_way_delay:float ->
  workload
(** Convenience: derive the analytic inputs from a generator spec. *)

val utilization : workload -> float
(** Mean per-copy utilization [rho] under 2PL-style holding, clamped to
    [0, 0.95]. *)

val snapshot : workload -> Estimator.snapshot
(** A full STL input set.  Per-copy rates are uniform (the model ignores
    skew); protocols share the base hold time but differ in their failure
    parameters. *)

val predicted_deadlock_probability : workload -> float
(** P_A approximation: [(K - 1) * rho^2 / 2] clamped to [0, 0.5] — the
    probability that a waiting transaction's holder is itself waiting on
    the first transaction's class of items. *)

val predicted_rejection_probability : workload -> window:float -> float
(** Probability that a conflicting operation with a larger timestamp is
    performed inside the request's vulnerability [window]:
    [1 - exp (-conflict_rate * window)]. *)
