lib/stl/txn_cost.ml: Float List Stl_model
