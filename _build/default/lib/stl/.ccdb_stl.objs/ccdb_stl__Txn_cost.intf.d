lib/stl/txn_cost.mli: Stl_model
