lib/stl/estimator.mli: Ccdb_model Ccdb_protocols Stl_model Txn_cost
