lib/stl/analytic.ml: Ccdb_model Ccdb_workload Estimator Float Stl_model Txn_cost
