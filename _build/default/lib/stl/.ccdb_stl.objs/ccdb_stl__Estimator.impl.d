lib/stl/estimator.ml: Ccdb_model Ccdb_protocols Float Hashtbl Stl_model Txn_cost
