lib/stl/stl_model.ml: Array Float
