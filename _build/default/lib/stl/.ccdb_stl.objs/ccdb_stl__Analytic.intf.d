lib/stl/analytic.mli: Ccdb_workload Estimator
