lib/stl/stl_model.mli:
