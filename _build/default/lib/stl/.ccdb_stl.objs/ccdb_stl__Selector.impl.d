lib/stl/selector.ml: Ccdb_model Ccdb_storage Estimator Hashtbl List Txn_cost
