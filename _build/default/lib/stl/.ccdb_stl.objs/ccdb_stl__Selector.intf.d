lib/stl/selector.mli: Ccdb_model Ccdb_storage Estimator Txn_cost
