type workload = {
  arrival_rate : float;
  mean_size : float;
  read_fraction : float;
  items : int;
  replication : int;
  sites : int;
  one_way_delay : float;
  compute_mean : float;
}

let of_spec (spec : Ccdb_workload.Generator.spec) ~setup_items
    ~setup_replication ~setup_sites ~one_way_delay =
  { arrival_rate = spec.arrival_rate;
    mean_size = float_of_int (spec.size_min + spec.size_max) /. 2.;
    read_fraction = spec.read_fraction;
    items = setup_items;
    replication = setup_replication;
    sites = setup_sites;
    one_way_delay;
    compute_mean = spec.compute_mean }

(* physical requests per transaction: each read hits one copy, each write
   hits every copy *)
let physical_requests w =
  let reads = w.mean_size *. w.read_fraction in
  let writes = w.mean_size *. (1. -. w.read_fraction) in
  reads +. (writes *. float_of_int w.replication)

let copies w = float_of_int (w.items * w.replication)

(* base lock-hold time: request -> grant round trip is paid before holding;
   the lock is held through the remaining grant collection (~ one round
   trip), the compute phase, and the release delivery *)
let base_hold w = (2. *. w.one_way_delay) +. w.compute_mean

let grant_rate w = w.arrival_rate *. physical_requests w

let utilization w =
  let per_copy = grant_rate w /. copies w in
  Float.min 0.95 (per_copy *. base_hold w)

let mm1_factor w = 1. /. (1. -. utilization w)

let predicted_deadlock_probability w =
  let rho = utilization w in
  let k = Float.max 1. (physical_requests w) in
  Float.min 0.5 ((k -. 1.) *. rho *. rho /. 2.)

(* rate at which requests conflicting with one given request are granted on
   its copy *)
let conflict_rate w ~for_write =
  let per_copy = grant_rate w /. copies w in
  let write_share = 1. -. w.read_fraction in
  if for_write then per_copy (* writes conflict with everything *)
  else per_copy *. write_share

let predicted_rejection_probability w ~window =
  Float.max 0.
    (Float.min 0.95 (1. -. exp (-.conflict_rate w ~for_write:true *. window)))

let snapshot w =
  if w.arrival_rate <= 0. then invalid_arg "Analytic.snapshot: rate <= 0";
  if w.items <= 0 || w.replication <= 0 || w.sites <= 0 then
    invalid_arg "Analytic.snapshot: bad topology";
  let n_copies = copies w in
  let lambda_a = Float.max 1e-9 (grant_rate w) in
  let q_r =
    let phys = physical_requests w in
    if phys <= 0. then 0.5 else w.mean_size *. w.read_fraction /. phys
  in
  let per_copy = lambda_a /. n_copies in
  let lambda_r = per_copy *. q_r in
  let lambda_w = per_copy *. (1. -. q_r) in
  let hold = base_hold w *. mm1_factor w in
  (* T/O: reads are vulnerable for one delivery delay; prewrites for the
     whole read-collection + compute phase *)
  let read_window = w.one_way_delay in
  let write_window = (3. *. w.one_way_delay) +. w.compute_mean in
  let p_reject_read =
    Float.min 0.95
      (1. -. exp (-.conflict_rate w ~for_write:false *. read_window))
  in
  let p_reject_write = predicted_rejection_probability w ~window:write_window in
  (* PA requests travel up front: both ops share the short window *)
  let p_backoff_read = p_reject_read in
  let p_backoff_write =
    predicted_rejection_probability w ~window:read_window
  in
  let response_time (_ : Ccdb_model.Protocol.t) =
    (* first-order: every protocol pays the base path; failures are already
       priced by the per-protocol STL inputs *)
    base_hold w *. mm1_factor w
  in
  { Estimator.params =
      { Stl_model.lambda_a; lambda_r; lambda_w; q_r;
        k = Float.max 1. (physical_requests w) };
    rates = (fun (_ : int * int) -> (lambda_r, lambda_w));
    two_pl =
      { Txn_cost.u_hold = hold; u_aborted = hold;
        p_abort = predicted_deadlock_probability w };
    t_o =
      { Txn_cost.u_hold = hold *. 0.5;
        (* T/O holds no locks pre-compute; its effective blocking is the
           prewrite-to-apply span *)
        u_aborted = hold *. 0.5;
        p_reject_read;
        p_reject_write };
    pa =
      { Txn_cost.u_hold = hold; u_aborted = hold *. 1.5;
        p_backoff_read; p_backoff_write };
    response_time }
