(** Per-protocol STL estimators (section 5.2).

    Each estimator answers: if transaction [t] runs under this protocol,
    what is the expected system-throughput loss caused by its locks?  The
    inputs are the per-copy queue rates, the protocol's observed lock-time
    and failure statistics, and the transaction's physical footprint
    (the copies it will read and write). *)

type footprint = {
  read_copies : (int * int) list;   (** one copy per logical read *)
  write_copies : (int * int) list;  (** every copy of each written item *)
}

type rates = (int * int) -> float * float
(** [(lambda_r j, lambda_w j)] for a physical copy [j]. *)

val lambda_t : rates -> footprint -> float
(** Initial throughput loss of [t]'s locks: a read lock on copy [j] blocks
    [lambda_w j]; a write lock blocks [lambda_w j + lambda_r j]. *)

type two_pl_stats = {
  u_hold : float;     (** U_2PL: mean lock time of a non-aborted request *)
  u_aborted : float;  (** U'_2PL: mean lock time of an aborted request *)
  p_abort : float;    (** P_A: probability an attempt dies in a deadlock *)
}

type to_stats = {
  u_hold : float;
  u_aborted : float;
  p_reject_read : float;   (** P_r *)
  p_reject_write : float;  (** P_w' *)
}

type pa_stats = {
  u_hold : float;
  u_aborted : float;       (** U'_PA: lock time when backed off *)
  p_backoff_read : float;  (** P_B *)
  p_backoff_write : float; (** P'_B *)
}

val stl_two_pl :
  Stl_model.params -> rates -> two_pl_stats -> footprint -> float
(** [STL_2PL = STL'(lambda_t, U) + P_A/(1-P_A) * STL'(lambda_t, U')].
    [p_abort] is clamped below 0.99 to keep the geometric series finite. *)

val stl_to : Stl_model.params -> rates -> to_stats -> footprint -> float
(** [STL_T/O = STL'(lambda_t, U) + (1-ps)/ps * STL'(lambda_t*, U')] with
    [ps = (1-P_r)^m (1-P_w')^n] and [lambda_t*] the conditional loss given
    at least one rejection (the balance equation of section 5.2). *)

val stl_pa : Stl_model.params -> rates -> pa_stats -> footprint -> float
(** [STL_PA = STL'(lambda_t, U) + (1-pb) * STL'(lambda_t~, U')] — no
    recursion, a PA transaction backs off at most once. *)
