(** Online estimation of every parameter the STL selector needs
    (section 5.2 lists them): per-copy read/write throughputs, per-protocol
    lock times U and U', and the failure probabilities P_A, P_r, P_w',
    P_B, P'_B.

    An estimator subscribes to a {!Ccdb_protocols.Runtime} event stream and
    accumulates counts; {!snapshot} turns them into inputs for
    {!Txn_cost}.  Priors keep the selector sane before any data exists
    (paper: "collected periodically or estimated through analytical
    methods"). *)

type priors = {
  hold_time : float;     (** prior U for every protocol *)
  aborted_time : float;  (** prior U' *)
}

val default_priors : priors
(** hold_time 30., aborted_time 30. — the scale of one round trip plus
    compute in the default network. *)

type snapshot = {
  params : Stl_model.params;
  rates : Txn_cost.rates;
  two_pl : Txn_cost.two_pl_stats;
  t_o : Txn_cost.to_stats;
  pa : Txn_cost.pa_stats;
  response_time : Ccdb_model.Protocol.t -> float;
      (** mean observed system time per protocol (EMA) — input for the
          response-time selection criterion that section 5.1 argues against
          (measured by experiment X7); [2 * priors.hold_time] before any
          observation *)
}

type t

val create : ?priors:priors -> Ccdb_protocols.Runtime.t -> t
(** Subscribes to the runtime's event stream immediately. *)

val snapshot : t -> snapshot
(** Current estimates.  Copies with no observed traffic report rate 0;
    protocols with no observations fall back to the priors.  [params.k] and
    [params.q_r] are estimated across all protocols; [params.lambda_a] is
    the sum of all per-copy rates (at least a small epsilon, so
    {!Stl_model.stl'} stays defined). *)

val observed_commits : t -> int
