(** The System Throughput Loss model of section 5.1.

    [STL'(lambda_loss, U)] is the expected throughput lost over the next [U]
    time units, given that locks blocking a throughput of [lambda_loss] are
    held now.  While blocked data exists, other requests obtaining locks may
    themselves be blocked (their transaction also has a blocked request) and
    add to the loss.  The paper defines the recursion

    {v
    STL'(l, U) = lambda_A * U                      if l >= lambda_A
    STL'(l, U) = E[ l*min(X,U)
                    + (X < U) * STL'(l + delta, U - X) ]
    v}

    where [X ~ Exp(lambda_block)] is the time of the next blocking lock
    grant,

    {v
    lambda_block = (lambda_A - l) * (1 - (1 - l/lambda_A)^(K-1))
    delta        = lambda_w + (1 - Qr) * lambda_r
    v}

    ([lambda_block]: requests get locks at rate [lambda_A - l]; each belongs
    to a transaction with [K-1] other requests, each blocked with
    probability [l / lambda_A]; [delta]: a read lock blocks the writes of
    its queue, a write lock blocks everything, averaged with read fraction
    [Qr]).

    The recursion is evaluated with dynamic programming, exactly as the
    paper prescribes: loss levels are discretized in steps of [delta] up to
    [lambda_A] and the exponential integral is computed by trapezoidal
    quadrature on a shared time grid.  (The printed formulas in the
    proceedings are OCR-damaged; this reconstruction is documented in
    DESIGN.md section 2.) *)

type params = {
  lambda_a : float;  (** total system throughput, sum of all queue rates *)
  lambda_r : float;  (** mean read throughput of a queue *)
  lambda_w : float;  (** mean write throughput of a queue *)
  q_r : float;       (** fraction of read requests, in [0,1] *)
  k : float;         (** mean number of requests per transaction, >= 1 *)
}

val validate : params -> unit
(** @raise Invalid_argument on non-positive [lambda_a], [k < 1.] or
    [q_r] outside [0,1]. *)

val lambda_block : params -> lambda_loss:float -> float
(** The blocking rate at the given loss level (0 when [k = 1] — single-
    request transactions never cascade). *)

val delta : params -> float
(** Mean additional loss per blocking lock grant. *)

val stl' : ?grid:int -> ?max_levels:int -> params -> lambda_loss:float -> u:float -> float
(** [stl' p ~lambda_loss ~u] evaluates the recursion.  [grid] (default 32)
    is the number of quadrature points, [max_levels] (default 40) caps the
    number of discretized loss levels (beyond the cap the loss is taken as
    saturated at [lambda_a], an upper bound).  Satisfies
    [0 <= stl' <= lambda_a *. u], monotone in [u] and in [lambda_loss].
    @raise Invalid_argument on negative [lambda_loss] or [u]. *)
