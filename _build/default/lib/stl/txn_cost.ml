type footprint = {
  read_copies : (int * int) list;
  write_copies : (int * int) list;
}

type rates = (int * int) -> float * float

let lambda_t rates fp =
  let read_loss =
    List.fold_left
      (fun acc copy ->
        let _, lw = rates copy in
        acc +. lw)
      0. fp.read_copies
  in
  let write_loss =
    List.fold_left
      (fun acc copy ->
        let lr, lw = rates copy in
        acc +. lw +. lr)
      0. fp.write_copies
  in
  read_loss +. write_loss

type two_pl_stats = { u_hold : float; u_aborted : float; p_abort : float }

type to_stats = {
  u_hold : float;
  u_aborted : float;
  p_reject_read : float;
  p_reject_write : float;
}

type pa_stats = {
  u_hold : float;
  u_aborted : float;
  p_backoff_read : float;
  p_backoff_write : float;
}

let clamp_prob p = Float.max 0. (Float.min 0.99 p)

let stl_two_pl params rates stats fp =
  let lt = lambda_t rates fp in
  let p = clamp_prob stats.p_abort in
  let success = Stl_model.stl' params ~lambda_loss:lt ~u:stats.u_hold in
  if p <= 0. then success
  else
    let failure = Stl_model.stl' params ~lambda_loss:lt ~u:stats.u_aborted in
    success +. (p /. (1. -. p) *. failure)

(* Conditional loss given at least one failure, from the balance equation:
     sum of per-request expected losses = (1-ps) lt_fail + ps lt
   where the left-hand side discounts each request by its own survival
   probability. *)
let conditional_loss ~lt ~ps ~survive_read ~survive_write rates fp =
  let read_part =
    List.fold_left
      (fun acc copy ->
        let _, lw = rates copy in
        acc +. (survive_read *. lw))
      0. fp.read_copies
  in
  let write_part =
    List.fold_left
      (fun acc copy ->
        let lr, lw = rates copy in
        acc +. (survive_write *. (lw +. lr)))
      0. fp.write_copies
  in
  let lhs = read_part +. write_part in
  Float.max 0. ((lhs -. (ps *. lt)) /. (1. -. ps))

let stl_to params rates stats fp =
  let lt = lambda_t rates fp in
  let m = float_of_int (List.length fp.read_copies) in
  let n = float_of_int (List.length fp.write_copies) in
  let pr = clamp_prob stats.p_reject_read in
  let pw = clamp_prob stats.p_reject_write in
  let ps = ((1. -. pr) ** m) *. ((1. -. pw) ** n) in
  let success = Stl_model.stl' params ~lambda_loss:lt ~u:stats.u_hold in
  if ps >= 1. -. 1e-9 then success
  else begin
    let lt_fail =
      conditional_loss ~lt ~ps ~survive_read:(1. -. pr)
        ~survive_write:(1. -. pw) rates fp
    in
    let failure = Stl_model.stl' params ~lambda_loss:lt_fail ~u:stats.u_aborted in
    success +. ((1. -. ps) /. ps *. failure)
  end

let stl_pa params rates stats fp =
  let lt = lambda_t rates fp in
  let m = float_of_int (List.length fp.read_copies) in
  let n = float_of_int (List.length fp.write_copies) in
  let pb = clamp_prob stats.p_backoff_read in
  let pb' = clamp_prob stats.p_backoff_write in
  let ps = ((1. -. pb) ** m) *. ((1. -. pb') ** n) in
  let success = Stl_model.stl' params ~lambda_loss:lt ~u:stats.u_hold in
  if ps >= 1. -. 1e-9 then success
  else begin
    let lt_back =
      conditional_loss ~lt ~ps ~survive_read:(1. -. pb)
        ~survive_write:(1. -. pb') rates fp
    in
    (* a PA transaction backs off at most once: one extra U' episode, no
       geometric series *)
    success +. ((1. -. ps) *. Stl_model.stl' params ~lambda_loss:lt_back ~u:stats.u_aborted)
  end
