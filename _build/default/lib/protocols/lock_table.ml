type entry = {
  txn : int;
  attempt : int;
  op : Ccdb_model.Op.kind;
  arrival : int;
  mutable granted : bool;
}

type t = {
  mutable queue : entry list; (* FCFS order, oldest first *)
  mutable next_arrival : int;
}

let create () = { queue = []; next_arrival = 0 }

let request t ~txn ~attempt ~op =
  let entry = { txn; attempt; op; arrival = t.next_arrival; granted = false } in
  t.next_arrival <- t.next_arrival + 1;
  t.queue <- t.queue @ [ entry ];
  entry

let grantable earlier entry =
  List.for_all
    (fun e -> e.txn = entry.txn || not (Ccdb_model.Op.conflicts e.op entry.op))
    earlier

let grant_ready t =
  let newly = ref [] in
  let rec scan earlier = function
    | [] -> ()
    | e :: rest ->
      if (not e.granted) && grantable earlier e then begin
        e.granted <- true;
        newly := e :: !newly
      end;
      scan (e :: earlier) rest
  in
  scan [] t.queue;
  List.rev !newly

let release t ~txn ~attempt =
  let found = ref None in
  t.queue <-
    List.filter
      (fun e ->
        if e.txn = txn && e.attempt = attempt && !found = None then begin
          found := Some e;
          false
        end
        else true)
      t.queue;
  !found

let entries t = t.queue

let waits_for t =
  let edges = ref [] in
  let rec scan earlier = function
    | [] -> ()
    | e :: rest ->
      if not e.granted then
        List.iter
          (fun e' ->
            if e'.txn <> e.txn && Ccdb_model.Op.conflicts e'.op e.op then
              edges := (e.txn, e'.txn) :: !edges)
          earlier;
      scan (e :: earlier) rest
  in
  scan [] t.queue;
  List.rev !edges

let holders t =
  List.filter_map
    (fun e -> if e.granted then Some (e.txn, e.op) else None)
    t.queue
