type response = Accepted | Backoff of int

type entry = {
  txn : int;
  site : int;
  interval : int;
  op : Ccdb_model.Op.kind;
  mutable ts : int;
  mutable blocked : bool;
  mutable granted : bool;
  mutable granted_at : float;
}

type t = {
  mutable entries : entry list; (* sorted by precedence *)
  mutable r_released : int;     (* high-water marks of released entries *)
  mutable w_released : int;
}

let create () = { entries = []; r_released = -1; w_released = -1 }

let precedence e = Ccdb_model.Precedence.timestamped ~ts:e.ts ~site:e.site ~txn:e.txn

let compare_entries a b = Ccdb_model.Precedence.compare (precedence a) (precedence b)

let sort t = t.entries <- List.stable_sort compare_entries t.entries

let granted_max t op =
  List.fold_left
    (fun acc e ->
      if e.granted && Ccdb_model.Op.equal e.op op then max acc e.ts else acc)
    (-1) t.entries

let r_ts t = max t.r_released (granted_max t Ccdb_model.Op.Read)
let w_ts t = max t.w_released (granted_max t Ccdb_model.Op.Write)

let request t ~txn ~site ~ts ~interval ~op =
  if List.exists (fun e -> e.txn = txn) t.entries then
    invalid_arg "Pa_queue.request: duplicate request";
  let floor =
    match op with
    | Ccdb_model.Op.Read -> w_ts t
    | Ccdb_model.Op.Write -> max (w_ts t) (r_ts t)
  in
  let entry =
    { txn; site; interval; op; ts; blocked = false; granted = false;
      granted_at = 0. }
  in
  let response =
    if ts > floor then Accepted
    else begin
      let tuple = Ccdb_model.Timestamp.Tuple.make ~ts ~interval in
      let ts' = Ccdb_model.Timestamp.Tuple.backoff tuple ~floor in
      entry.ts <- ts';
      entry.blocked <- true;
      Backoff ts'
    end
  in
  t.entries <- t.entries @ [ entry ];
  sort t;
  response

let update_ts t ~txn ~ts =
  match List.find_opt (fun e -> e.txn = txn) t.entries with
  | None -> `Absent
  | Some e ->
    let revoked = e.granted in
    e.ts <- ts;
    e.blocked <- false;
    e.granted <- false;
    sort t;
    if revoked then `Revoked else `Moved

let grant_ready t ~now =
  let newly = ref [] in
  (* HD discipline: walk the queue in precedence order past granted entries;
     grant the frontier entry while the lock rules allow, stop at the first
     entry that must keep waiting. *)
  let rec scan earlier_any earlier_write = function
    | [] -> ()
    | e :: rest ->
      if e.granted then
        scan true (earlier_write || Ccdb_model.Op.equal e.op Ccdb_model.Op.Write) rest
      else if e.blocked then ()
      else begin
        let grantable =
          match e.op with
          | Ccdb_model.Op.Read -> not earlier_write
          | Ccdb_model.Op.Write -> not earlier_any
        in
        if grantable then begin
          e.granted <- true;
          e.granted_at <- now;
          newly := e :: !newly;
          scan true (earlier_write || Ccdb_model.Op.equal e.op Ccdb_model.Op.Write) rest
        end
      end
  in
  scan false false t.entries;
  List.rev !newly

let release t ~txn =
  match List.find_opt (fun e -> e.txn = txn) t.entries with
  | None -> None
  | Some e ->
    t.entries <- List.filter (fun e' -> e'.txn <> txn) t.entries;
    (match e.op with
     | Ccdb_model.Op.Read -> t.r_released <- max t.r_released e.ts
     | Ccdb_model.Op.Write -> t.w_released <- max t.w_released e.ts);
    Some e

let entries t = t.entries
