lib/protocols/mvto_queue.ml: Either Int List Option
