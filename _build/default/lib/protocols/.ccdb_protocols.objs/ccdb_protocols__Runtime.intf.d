lib/protocols/runtime.mli: Ccdb_model Ccdb_sim Ccdb_storage Ccdb_util
