lib/protocols/cto_system.ml: Array Ccdb_model Ccdb_sim Ccdb_storage Hashtbl Int List Runtime
