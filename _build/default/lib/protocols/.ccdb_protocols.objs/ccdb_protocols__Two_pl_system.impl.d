lib/protocols/two_pl_system.ml: Ccdb_model Ccdb_sim Ccdb_storage Deadlock Edge_chasing Hashtbl Int List Lock_table Runtime
