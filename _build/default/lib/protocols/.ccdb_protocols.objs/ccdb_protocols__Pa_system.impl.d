lib/protocols/pa_system.ml: Ccdb_model Ccdb_sim Ccdb_storage Hashtbl List Pa_queue Runtime
