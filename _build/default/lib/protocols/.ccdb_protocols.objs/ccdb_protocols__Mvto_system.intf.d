lib/protocols/mvto_system.mli: Ccdb_model Runtime
