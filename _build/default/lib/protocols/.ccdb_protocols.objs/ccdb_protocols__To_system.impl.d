lib/protocols/to_system.ml: Ccdb_model Ccdb_sim Ccdb_storage Hashtbl List Runtime To_queue
