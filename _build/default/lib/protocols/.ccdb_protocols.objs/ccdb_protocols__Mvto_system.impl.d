lib/protocols/mvto_system.ml: Ccdb_model Ccdb_sim Ccdb_storage Hashtbl List Mvto_queue Option Runtime
