lib/protocols/deadlock.ml: Ccdb_serial Ccdb_sim List
