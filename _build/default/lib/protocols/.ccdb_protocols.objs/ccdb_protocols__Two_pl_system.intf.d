lib/protocols/two_pl_system.mli: Ccdb_model Deadlock Runtime
