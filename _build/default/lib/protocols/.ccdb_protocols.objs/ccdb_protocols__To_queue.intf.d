lib/protocols/to_queue.mli: Ccdb_model
