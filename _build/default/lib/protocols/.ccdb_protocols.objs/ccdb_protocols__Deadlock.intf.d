lib/protocols/deadlock.mli: Ccdb_sim
