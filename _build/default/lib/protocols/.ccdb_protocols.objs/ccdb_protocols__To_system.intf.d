lib/protocols/to_system.mli: Ccdb_model Runtime
