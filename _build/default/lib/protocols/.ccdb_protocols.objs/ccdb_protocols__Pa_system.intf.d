lib/protocols/pa_system.mli: Ccdb_model Runtime
