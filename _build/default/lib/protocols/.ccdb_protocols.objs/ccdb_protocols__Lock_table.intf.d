lib/protocols/lock_table.mli: Ccdb_model
