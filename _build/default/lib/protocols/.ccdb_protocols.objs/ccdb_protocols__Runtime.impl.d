lib/protocols/runtime.ml: Ccdb_model Ccdb_sim Ccdb_storage Ccdb_util List
