lib/protocols/cto_system.mli: Ccdb_model Runtime
