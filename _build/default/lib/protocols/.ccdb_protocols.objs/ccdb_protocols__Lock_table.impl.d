lib/protocols/lock_table.ml: Ccdb_model List
