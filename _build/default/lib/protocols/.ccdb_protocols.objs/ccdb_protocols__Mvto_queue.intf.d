lib/protocols/mvto_queue.mli:
