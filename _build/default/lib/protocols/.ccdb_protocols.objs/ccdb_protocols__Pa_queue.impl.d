lib/protocols/pa_queue.ml: Ccdb_model List
