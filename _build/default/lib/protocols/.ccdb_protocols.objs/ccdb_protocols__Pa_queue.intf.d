lib/protocols/pa_queue.mli: Ccdb_model
