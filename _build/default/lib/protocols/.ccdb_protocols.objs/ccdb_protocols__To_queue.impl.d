lib/protocols/to_queue.ml: Ccdb_model List
