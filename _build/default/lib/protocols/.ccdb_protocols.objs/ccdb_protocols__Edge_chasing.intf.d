lib/protocols/edge_chasing.mli: Ccdb_sim
