lib/protocols/edge_chasing.ml: Ccdb_sim Hashtbl List Option
