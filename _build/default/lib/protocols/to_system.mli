(** Pure Basic Timestamp Ordering baseline (Bernstein & Goodman [3]).

    The classic lifecycle: the transaction sends its read requests, collects
    the values (a read waits behind smaller-timestamp buffered prewrites),
    computes, then sends one prewrite per written copy.  A prewrite is
    rejected when it arrives out of timestamp order; once every prewrite is
    acknowledged the transaction commits and the buffered writes apply in
    timestamp order.  Any rejection — read or prewrite — restarts the whole
    transaction with a fresh, larger timestamp after [restart_delay], so a
    late rejection wastes the reads and the computation already performed:
    this is why Basic T/O degrades as transaction size grows ([10], and the
    paper's section 5 discussion).

    Unlike 2PL/PA (and unlike the unified system, which gives T/O
    transactions predeclared write locks), a committed write here never
    waits for a lock-release round — there are no locks at all.

    Read-modify-write payloads: an item in both access sets is accessed
    through a single blind write (see {!Ccdb_model.Txn.make}); under pure
    Basic T/O the payload reads [0] for such items because nothing is read.
    Keep RMW workloads on the unified system, whose write grants carry the
    current value. *)

type config = {
  restart_delay : float;
  thomas_write_rule : bool;
      (** accept-and-drop obsolete writes instead of restarting
          ({!To_queue.verdict}); an extension beyond the paper's Basic T/O,
          measured by the X2 ablation *)
}

val default_config : config
(** restart_delay 50., Thomas Write Rule off. *)

type payload_fn = (int -> int) -> (int * int) list

type t

val create : ?config:config -> Runtime.t -> t

val submit : t -> ?payload:payload_fn -> Ccdb_model.Txn.t -> unit
(** @raise Invalid_argument on a duplicate live transaction id. *)

val active : t -> int
