(** Conservative Timestamp Ordering baseline.

    The restart-free member of the timestamp family — the subject of the
    authors' own companion analysis (reference [25] of the paper,
    "Queueing analysis of the conservative timestamp-ordering concurrency
    control algorithm").

    An operation with timestamp [t] executes at a copy only once the copy is
    certain no operation with a smaller timestamp can still arrive: every
    site has {e advertised} (through its operations being sent on FIFO
    channels and through periodic tick messages) that it will never again
    send an operation with timestamp below [t].  Operations then execute in
    strict global timestamp order per copy, so the execution is trivially
    conflict serializable and there are no rejections, restarts or
    deadlocks — the price is waiting for the slowest site's advertisement,
    plus the tick traffic (the classic conservative-T/O communication
    cost).

    A site's advertisement is [min(in-flight timestamps) - 1], or the
    timestamp source's current value when it has nothing in flight;
    a transaction leaves the in-flight set once its committed writes have
    been sent (its timestamp can no longer appear on any channel). *)

type config = {
  tick_interval : float;
      (** period of the null-message broadcast that keeps idle sites from
          stalling the others *)
}

val default_config : config
(** tick_interval 25. *)

type payload_fn = (int -> int) -> (int * int) list
(** Same convention as {!To_system.payload_fn} (and the same blind-write
    caveat for items in both access sets). *)

type t

val create : ?config:config -> Runtime.t -> t

val submit : t -> ?payload:payload_fn -> Ccdb_model.Txn.t -> unit
(** @raise Invalid_argument on a duplicate live transaction id. *)

val active : t -> int

val ticks_sent : t -> int
(** Null messages broadcast so far (the protocol's communication cost). *)
