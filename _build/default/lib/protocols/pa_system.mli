(** Pure Precedence Agreement baseline (section 3.4).

    Phase 1: the issuer sends every request with the transaction's timestamp
    tuple (TS, INT) and waits until each copy has either granted or reported
    a back-off timestamp.  If everything was granted the transaction
    executes.  Otherwise, phase 2: the issuer agrees on
    [TS' = max_j TS'_ij], updates every queue (grants already received are
    revoked and re-issued), waits for all grants, executes, and releases.
    PA transactions never restart and never deadlock (Corollary 1). *)

type config = {
  backoff_interval : int;
      (** INT of every transaction's timestamp tuple (paper leaves the
          choice free; a constant matching the timestamp granularity works
          well) *)
}

val default_config : config
(** backoff_interval 8. *)

type payload_fn = (int -> int) -> (int * int) list

type t

val create : ?config:config -> Runtime.t -> t

val submit : t -> ?payload:payload_fn -> Ccdb_model.Txn.t -> unit
(** @raise Invalid_argument on a duplicate live transaction id. *)

val active : t -> int
