type restart_reason =
  | To_rejected of Ccdb_model.Op.kind
  | Deadlock_victim
  | Prevention_kill

type event =
  | Lock_granted of {
      txn : int;
      protocol : Ccdb_model.Protocol.t;
      op : Ccdb_model.Op.kind;
      item : int;
      site : int;
      at : float;
    }
  | Lock_released of {
      txn : int;
      protocol : Ccdb_model.Protocol.t;
      op : Ccdb_model.Op.kind;
      item : int;
      site : int;
      granted_at : float;
      at : float;
      aborted : bool;
    }
  | Txn_committed of {
      txn : Ccdb_model.Txn.t;
      submitted_at : float;
      executed_at : float;
      restarts : int;
    }
  | Txn_restarted of {
      txn : Ccdb_model.Txn.t;
      reason : restart_reason;
      at : float;
    }
  | Pa_backoff of { txn : int; op : Ccdb_model.Op.kind; at : float }

type completion = {
  txn : Ccdb_model.Txn.t;
  submitted_at : float;
  executed_at : float;
  restarts : int;
}

type counters = {
  mutable committed : int;
  mutable restarts : int;
  mutable rejections : int;
  mutable deadlock_aborts : int;
  mutable prevention_aborts : int;
  mutable backoffs : int;
}

type t = {
  engine : Ccdb_sim.Engine.t;
  net : Ccdb_sim.Net.t;
  rng : Ccdb_util.Rng.t;
  catalog : Ccdb_storage.Catalog.t;
  store : Ccdb_storage.Store.t;
  ts_source : Ccdb_model.Timestamp.Source.t;
  counters : counters;
  mutable completions : completion list; (* newest first *)
  mutable listeners : (event -> unit) list;
}

let create ?(seed = 42) ~net_config ~catalog () =
  if net_config.Ccdb_sim.Net.sites <> Ccdb_storage.Catalog.sites catalog then
    invalid_arg "Runtime.create: catalog/network site count mismatch";
  let rng = Ccdb_util.Rng.create ~seed in
  let engine = Ccdb_sim.Engine.create () in
  let net_rng = Ccdb_util.Rng.split rng in
  let net = Ccdb_sim.Net.create engine net_rng net_config in
  { engine;
    net;
    rng;
    catalog;
    store = Ccdb_storage.Store.create catalog;
    ts_source = Ccdb_model.Timestamp.Source.create ();
    counters =
      { committed = 0; restarts = 0; rejections = 0; deadlock_aborts = 0;
        prevention_aborts = 0; backoffs = 0 };
    completions = [];
    listeners = [] }

let engine t = t.engine
let net t = t.net
let rng t = t.rng
let catalog t = t.catalog
let store t = t.store
let ts_source t = t.ts_source
let now t = Ccdb_sim.Engine.now t.engine

let subscribe t f = t.listeners <- f :: t.listeners

let emit t event =
  (match event with
   | Txn_committed { txn; submitted_at; executed_at; restarts } ->
     t.counters.committed <- t.counters.committed + 1;
     t.completions <-
       { txn; submitted_at; executed_at; restarts } :: t.completions
   | Txn_restarted { reason; _ } ->
     t.counters.restarts <- t.counters.restarts + 1;
     (match reason with
      | To_rejected _ -> t.counters.rejections <- t.counters.rejections + 1
      | Deadlock_victim ->
        t.counters.deadlock_aborts <- t.counters.deadlock_aborts + 1
      | Prevention_kill ->
        t.counters.prevention_aborts <- t.counters.prevention_aborts + 1)
   | Pa_backoff _ -> t.counters.backoffs <- t.counters.backoffs + 1
   | Lock_granted _ | Lock_released _ -> ());
  List.iter (fun f -> f event) t.listeners

let counters t = t.counters

let completions t = List.rev t.completions

let run ?until t = Ccdb_sim.Engine.run ?until t.engine

let quiesce ?(max_events = 10_000_000) t =
  Ccdb_sim.Engine.run ~max_events t.engine;
  if Ccdb_sim.Engine.pending t.engine > 0 then
    failwith "Runtime.quiesce: event budget exhausted (possible livelock)"
