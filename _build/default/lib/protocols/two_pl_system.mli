(** Pure static Two-Phase Locking baseline.

    Every transaction predeclares its read and write sets; the request
    issuer sends one lock request per physical copy (read-one/write-all),
    waits for all grants, computes, then sends releases carrying the write
    values.  Requests queue FCFS at each copy ({!Lock_table}); deadlocks are
    broken by a centralized periodic detector ({!Deadlock}) aborting the
    youngest transaction in a witness cycle, which restarts after
    [restart_delay]. *)

(** Deadlock prevention policies, keyed on transaction age (the id; smaller
    means older).  With prevention active no wait-for cycle can form, so the
    detector stays off. *)
type prevention =
  | No_prevention  (** rely on {!Deadlock} detection *)
  | Wait_die
      (** a requester younger than a transaction it would wait behind
          aborts itself and retries with its original age *)
  | Wound_wait
      (** a requester aborts ("wounds") every younger waiting transaction
          in its way; transactions only ever wait behind older ones *)

type config = {
  restart_delay : float;           (** delay before a deadlock victim resubmits *)
  detection : Deadlock.detection;  (** centralized WFG scan or edge-chasing *)
  prevention : prevention;
}

val default_config : config
(** restart_delay 50., centralized detection every 100. at site 0,
    no prevention. *)

type payload_fn = (int -> int) -> (int * int) list
(** A transaction body: given a function returning the value read for each
    item in its access sets, produces the [(item, value)] pairs to write.
    When omitted, every written item receives the transaction id. *)

type t

val create : ?config:config -> Runtime.t -> t

val submit : t -> ?payload:payload_fn -> Ccdb_model.Txn.t -> unit
(** Submits at the current simulation time.  The transaction's protocol
    field is ignored (everything runs 2PL here).
    @raise Invalid_argument on a duplicate live transaction id. *)

val active : t -> int
(** Transactions submitted but not yet committed. *)

val detector_cycles : t -> int
(** Wait-for cycles the detector resolved so far (either mechanism). *)
