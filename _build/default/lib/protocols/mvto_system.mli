(** Multiversion Timestamp Ordering baseline ({!Mvto_queue} per copy).

    Same lifecycle as the Basic T/O baseline — reads, compute, prewrites,
    commit — but reads are served from the version chain and are never
    rejected, so only write-write/read interval conflicts restart a
    transaction.  This is the multiversion member of the comparison in
    Lin & Nolte [10] that the paper's section 5 cites.

    Because a multiversion execution is {e not} conflict-serializable over
    single-version logs (an old version can be read after a newer write),
    MVTO operations are not entered in the store's implementation log;
    correctness is checked by {!verify}, which asserts the defining MVTO
    invariant at quiescence: every read observed the committed version with
    the largest write timestamp below its own, and each copy's final value
    is its newest committed version. *)

type config = { restart_delay : float }

val default_config : config
(** restart_delay 50. *)

type t

val create : ?config:config -> Runtime.t -> t

val submit : t -> Ccdb_model.Txn.t -> unit
(** Write values are the transaction id (payloads are not supported: an
    MVTO read of the write set would need its own read timestamps).
    @raise Invalid_argument on a duplicate live transaction id. *)

val active : t -> int

val verify : t -> bool
(** The MVTO invariant over the whole run (see above); also checks that the
    physical store holds each copy's newest committed version. *)
