type config = { probe_delay : float }

let default_config = { probe_delay = 150. }

type callbacks = {
  is_waiting : int -> bool;
  home_site : int -> int option;
  pending_sites : int -> int list;
  local_waits_on : site:int -> txn:int -> int list;
  may_initiate : int -> bool;
  on_deadlock : int -> unit;
}

type t = {
  engine : Ccdb_sim.Engine.t;
  net : Ccdb_sim.Net.t;
  config : config;
  cb : callbacks;
  (* one armed timer per blocked transaction *)
  timers : (int, unit) Hashtbl.t;
  (* next round id to allocate, per initiator *)
  next_round : (int, int) Hashtbl.t;
  (* smallest round id still considered valid, per initiator; bumped when
     the initiator makes progress, which retires every outstanding round *)
  valid_from : (int, int) Hashtbl.t;
  (* (initiator, round, txn) triples already forwarded *)
  seen : (int * int * int, unit) Hashtbl.t;
  (* rounds whose probe came home without intervening progress *)
  confirmations : (int, int) Hashtbl.t;
  mutable rounds_started : int;
  mutable deadlocks_found : int;
}

let create engine net config cb =
  if config.probe_delay <= 0. then
    invalid_arg "Edge_chasing.create: probe_delay must be positive";
  { engine; net; config; cb; timers = Hashtbl.create 32;
    next_round = Hashtbl.create 32; valid_from = Hashtbl.create 32;
    seen = Hashtbl.create 256; confirmations = Hashtbl.create 32;
    rounds_started = 0; deadlocks_found = 0 }

let get tbl key = Option.value ~default:0 (Hashtbl.find_opt tbl key)

let fresh_round t initiator =
  let r = get t.next_round initiator + 1 in
  Hashtbl.replace t.next_round initiator r;
  t.rounds_started <- t.rounds_started + 1;
  r

let round_valid t initiator round = round >= get t.valid_from initiator

(* retire every outstanding round and pending suspicion *)
let invalidate t initiator =
  Hashtbl.replace t.valid_from initiator (get t.next_round initiator + 1);
  Hashtbl.remove t.confirmations initiator

(* Ask each queue-manager site for [txn]'s local wait-for targets and probe
   their home sites.  [from_site] pays for the query hop. *)
let rec fan_out t ~initiator ~round ~txn ~from_site =
  List.iter
    (fun qm_site ->
      Ccdb_sim.Net.send t.net ~src:from_site ~dst:qm_site ~kind:"probe-scan"
        (fun () ->
          let targets = t.cb.local_waits_on ~site:qm_site ~txn in
          List.iter
            (fun target ->
              match t.cb.home_site target with
              | None -> ()
              | Some home ->
                Ccdb_sim.Net.send t.net ~src:qm_site ~dst:home ~kind:"probe"
                  (fun () -> on_probe t ~initiator ~round ~txn:target))
            targets))
    (t.cb.pending_sites txn)

and on_probe t ~initiator ~round ~txn =
  if round_valid t initiator round then begin
    if txn = initiator then begin
      if Hashtbl.mem t.seen (initiator, round, initiator) then ()
      else begin
      Hashtbl.replace t.seen (initiator, round, initiator) ();
      (* The probe came home.  Edges are sampled at different instants along
         the path, so with incremental lock grants this can be a phantom: a
         chain that never existed all at once.  Require a second round to
         come home with no progress in between ({!txn_progress} resets the
         suspicion) before declaring a deadlock.  A genuine cycle keeps
         confirming, because none of its members can move. *)
      let confirmed = 1 + get t.confirmations initiator in
      Hashtbl.replace t.confirmations initiator confirmed;
      (* this particular round is spent *)
      if confirmed >= 2 then begin
        t.deadlocks_found <- t.deadlocks_found + 1;
        invalidate t initiator;
        t.cb.on_deadlock initiator
      end
      else begin
        (* re-probe immediately for confirmation; the periodic timer keeps
           further rounds coming regardless *)
        let round = fresh_round t initiator in
        match t.cb.home_site initiator with
        | Some home -> fan_out t ~initiator ~round ~txn:initiator ~from_site:home
        | None -> ()
      end
      end
    end
    else if t.cb.is_waiting txn
            && not (Hashtbl.mem t.seen (initiator, round, txn)) then begin
      Hashtbl.replace t.seen (initiator, round, txn) ();
      match t.cb.home_site txn with
      | None -> ()
      | Some home -> fan_out t ~initiator ~round ~txn ~from_site:home
    end
  end

let rec tick t txn =
  if Hashtbl.mem t.timers txn then begin
    if t.cb.is_waiting txn && t.cb.may_initiate txn then begin
      (* a new round per period; outstanding rounds stay valid — a slow
         cycle's probe may take longer than one period to come home *)
      let round = fresh_round t txn in
      (match t.cb.home_site txn with
       | Some home -> fan_out t ~initiator:txn ~round ~txn ~from_site:home
       | None -> ());
      arm t txn
    end
    else Hashtbl.remove t.timers txn
  end

and arm t txn =
  ignore
    (Ccdb_sim.Engine.schedule t.engine ~after:t.config.probe_delay (fun () ->
         tick t txn))

let txn_blocked t txn =
  if t.cb.may_initiate txn && not (Hashtbl.mem t.timers txn) then begin
    Hashtbl.replace t.timers txn ();
    arm t txn
  end

let txn_unblocked t txn =
  Hashtbl.remove t.timers txn;
  invalidate t txn

let txn_progress t txn =
  (* a grant arrived: whatever chain a probe observed has moved *)
  invalidate t txn

let rounds_started t = t.rounds_started
let deadlocks_found t = t.deadlocks_found
