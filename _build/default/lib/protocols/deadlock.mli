(** Deadlock detection for systems that admit 2PL waiting cycles.

    Two detectors are provided, matching the mechanisms the paper cites:

    - {b Centralized}: a detector process at a designated site periodically
      collects the wait-for graph.  Each scan costs one report message per
      site plus one abort message per victim, and the abort takes effect only
      after the simulated network delay — so detection time and cost (the
      paper's parameter (6)) are both modelled.
    - {b Edge-chasing} (Chandy-Misra-Haas style, {!Probes}): a transaction
      blocked longer than a threshold sends a probe along wait-for edges;
      a probe returning to its initiator proves a cycle.  Exposed as a pure
      state machine driven by the owning system. *)

(** How a system detects 2PL deadlocks. *)
type detection =
  | Centralized of { interval : float; detector_site : int }
      (** periodic wait-for-graph collection at one site *)
  | Edge_chasing of { probe_delay : float }
      (** Chandy-Misra-Haas probes ({!Edge_chasing}) *)

val default_detection : detection
(** [Centralized { interval = 100.; detector_site = 0 }]. *)

type victim_choice = int list -> int option
(** Picks the victim from a witness cycle; [None] aborts nothing (used when
    a stale cycle no longer holds). *)

val youngest : int list -> int option
(** Largest transaction id in the cycle (ids increase with arrival, so this
    is the youngest transaction). *)

type t

val create_centralized :
  engine:Ccdb_sim.Engine.t ->
  net:Ccdb_sim.Net.t ->
  interval:float ->
  detector_site:int ->
  edges:(unit -> (int * int) list) ->
  choose_victim:victim_choice ->
  victim_site:(int -> int option) ->
  abort:(int -> unit) ->
  t
(** [edges] snapshots the current wait-for graph; [victim_site] maps a
    transaction to its issuing site ([None] if it no longer exists);
    [abort v] is invoked at the victim's site after the abort message
    arrives.  The snapshot may be stale by then — the owning system must
    ignore aborts for transactions that are no longer waiting. *)

val start : t -> unit
(** Schedules the periodic scans. *)

val stop : t -> unit
(** No further scans fire after the current instant. *)

val scans : t -> int
val cycles_found : t -> int

(** Chandy-Misra-Haas edge-chasing probes (AND model), as a pure state
    machine: the caller owns delivery of probes between transactions. *)
module Probes : sig
  type probe = { initiator : int; sender : int; receiver : int }

  val initiate : blocked:int -> waits_on:int list -> probe list
  (** Probes a blocked transaction sends to everything it waits on. *)

  val on_receive :
    probe ->
    receiver_blocked:bool ->
    waits_on:int list ->
    [ `Deadlock of int  (** cycle detected; the initiator id *)
    | `Forward of probe list
    | `Ignore ]
  (** CMH propagation rule: a blocked receiver forwards the probe along its
      own wait-for edges; a probe whose initiator equals the receiver proves
      a deadlock; an unblocked receiver discards the probe. *)
end
