type detection =
  | Centralized of { interval : float; detector_site : int }
  | Edge_chasing of { probe_delay : float }

let default_detection = Centralized { interval = 100.; detector_site = 0 }

type victim_choice = int list -> int option

let youngest = function
  | [] -> None
  | cycle -> Some (List.fold_left max min_int cycle)

type t = {
  engine : Ccdb_sim.Engine.t;
  net : Ccdb_sim.Net.t;
  interval : float;
  detector_site : int;
  edges : unit -> (int * int) list;
  choose_victim : victim_choice;
  victim_site : int -> int option;
  abort : int -> unit;
  mutable running : bool;
  mutable pending : Ccdb_sim.Engine.handle option;
  mutable scans : int;
  mutable cycles_found : int;
}

let create_centralized ~engine ~net ~interval ~detector_site ~edges
    ~choose_victim ~victim_site ~abort =
  if interval <= 0. then invalid_arg "Deadlock: interval must be positive";
  { engine; net; interval; detector_site; edges; choose_victim; victim_site;
    abort; running = false; pending = None; scans = 0; cycles_found = 0 }

(* One victim per scan: abort it, then let the next scan deal with any
   remaining cycles (matching the conservative behaviour of periodic
   detectors). *)
let scan t =
  t.scans <- t.scans + 1;
  (* each site reports its local wait-for edges to the detector site *)
  let sites = Ccdb_sim.Net.sites t.net in
  for site = 0 to sites - 1 do
    if site <> t.detector_site then
      Ccdb_sim.Net.send t.net ~src:site ~dst:t.detector_site ~kind:"wfg-report"
        (fun () -> ())
  done;
  let graph =
    Ccdb_serial.Conflict_graph.of_edges ~nodes:[] ~edges:(t.edges ())
  in
  match Ccdb_serial.Conflict_graph.find_cycle graph with
  | None -> ()
  | Some cycle ->
    t.cycles_found <- t.cycles_found + 1;
    (match t.choose_victim cycle with
     | None -> ()
     | Some victim ->
       (match t.victim_site victim with
        | None -> ()
        | Some site ->
          Ccdb_sim.Net.send t.net ~src:t.detector_site ~dst:site ~kind:"abort"
            (fun () -> t.abort victim)))

let rec tick t =
  t.pending <- None;
  if t.running then begin
    scan t;
    t.pending <-
      Some
        (Ccdb_sim.Engine.schedule t.engine ~after:t.interval (fun () -> tick t))
  end

let start t =
  if not t.running then begin
    t.running <- true;
    (* exactly one tick chain: a stale pending tick would double the scan
       rate (and with stale wait-for snapshots, double-abort both members
       of a cycle — a victim-churn livelock found by randomized testing) *)
    (match t.pending with
     | Some h -> ignore (Ccdb_sim.Engine.cancel t.engine h)
     | None -> ());
    t.pending <-
      Some
        (Ccdb_sim.Engine.schedule t.engine ~after:t.interval (fun () -> tick t))
  end

let stop t =
  t.running <- false;
  (match t.pending with
   | Some h -> ignore (Ccdb_sim.Engine.cancel t.engine h)
   | None -> ());
  t.pending <- None

let scans t = t.scans
let cycles_found t = t.cycles_found

module Probes = struct
  type probe = { initiator : int; sender : int; receiver : int }

  let initiate ~blocked ~waits_on =
    List.map
      (fun target -> { initiator = blocked; sender = blocked; receiver = target })
      waits_on

  let on_receive probe ~receiver_blocked ~waits_on =
    if probe.receiver = probe.initiator then `Deadlock probe.initiator
    else if not receiver_blocked then `Ignore
    else
      `Forward
        (List.map
           (fun target ->
             { initiator = probe.initiator;
               sender = probe.receiver;
               receiver = target })
           waits_on)
end
