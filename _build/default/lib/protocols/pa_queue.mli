(** Precedence Agreement data queue for one physical copy (section 3.4).

    The queue keeps every pending request sorted by precedence
    (timestamp, then issuing site, then transaction id).  A request arriving
    too late is not rejected: the queue computes the back-off timestamp
    [TS'_ij = TS_i + k * INT_i], the smallest such value clearing the
    relevant high-water mark, inserts the request as {e blocked} at that
    position, and reports [TS'_ij] to the request issuer.  A blocked entry
    stalls the grant frontier (rule A in the paper) until the issuer's
    agreed timestamp [TS'_i] arrives and re-activates it.

    Grants follow the head-of-queue (HD) discipline: only the first
    ungranted entry may be granted — a read when no earlier granted write is
    still held, a write when no earlier granted entry is still held —
    so grants happen in precedence order per queue (E1).

    When the issuer agrees on [TS'_i = max_j TS'_ij] it updates every queue,
    including queues that had already granted the original request; such a
    grant is {e revoked} (safe: a granted-but-unreleased request has exposed
    no data to anyone but its own issuer, who discards it) and re-issued once
    the entry becomes grantable at its new position. *)

type response =
  | Accepted           (** queued; a grant will follow eventually *)
  | Backoff of int     (** too late; the back-off timestamp [TS'_ij] *)

type entry = {
  txn : int;
  site : int;
  interval : int;
  op : Ccdb_model.Op.kind;
  mutable ts : int;
  mutable blocked : bool;     (** awaiting the issuer's agreed timestamp *)
  mutable granted : bool;
  mutable granted_at : float; (** simulation time of the (last) grant *)
}

type t

val create : unit -> t

val r_ts : t -> int
(** Effective R-TS(j): the largest timestamp over released reads and
    currently granted reads ([-1] when none). *)

val w_ts : t -> int
(** Effective W-TS(j), same construction over writes. *)

val request :
  t -> txn:int -> site:int -> ts:int -> interval:int ->
  op:Ccdb_model.Op.kind -> response
(** Acceptance test of step 2(c): a read needs [ts > w_ts], a write needs
    [ts > max r_ts w_ts]; otherwise the back-off timestamp is computed and
    the entry is queued blocked.
    @raise Invalid_argument on a duplicate request by the transaction. *)

val update_ts : t -> txn:int -> ts:int -> [ `Moved | `Revoked | `Absent ]
(** Step 2(d): sets the agreed timestamp, unblocks the entry, re-sorts, and
    revokes an existing grant ([`Revoked]).  [`Absent] when the transaction
    has no entry here. *)

val grant_ready : t -> now:float -> entry list
(** Marks every entry the HD discipline now allows as granted (recording
    [now]) and returns them in precedence order. *)

val release : t -> txn:int -> entry option
(** Removes the transaction's entry and advances the released high-water
    marks; [None] when absent. *)

val entries : t -> entry list
(** Pending entries in precedence order. *)
