(** Distributed deadlock detection by edge-chasing probes
    (Chandy-Misra-Haas AND-model, the mechanism behind the paper's
    citations [6] and [11]).

    Unlike the centralized detector, no site ever sees the whole wait-for
    graph.  A transaction blocked for longer than [probe_delay] starts a
    probing round: its issuer asks every queue-manager site holding one of
    its pending requests for the local transactions it waits on, and sends a
    probe to each of their home sites.  A blocked receiver forwards the
    probe the same way; a probe arriving back at its initiator proves a
    cycle and the initiator aborts itself (in the unified system only 2PL
    transactions initiate, so the victim is always a 2PL transaction —
    consistent with Corollary 2).

    Probes carry a round number and each (initiator, round) is forwarded at
    most once per transaction, so one round costs O(edges) messages.  Rounds
    repeat while the initiator stays blocked, catching cycles that form
    after the first round.

    {b Phantom suppression.}  Edges are sampled at different instants along
    a probe's path, so with incremental lock grants a probe can come home
    along a chain that never existed at any single instant.  A deadlock is
    therefore declared only after two consecutive rounds confirm it, and any
    grant the initiator receives in between ({!txn_progress}) resets the
    suspicion.  Genuine cycles confirm immediately since none of their
    members can make progress.

    The owning system supplies its own topology through callbacks; this
    module owns timers, dedup, message sending and victim notification. *)

type config = { probe_delay : float }

val default_config : config
(** probe_delay 150. *)

type callbacks = {
  is_waiting : int -> bool;
      (** is the transaction currently blocked waiting for grants? *)
  home_site : int -> int option;
      (** issuing site of a live transaction *)
  pending_sites : int -> int list;
      (** queue-manager sites holding the transaction's outstanding
          requests *)
  local_waits_on : site:int -> txn:int -> int list;
      (** at [site], the transactions [txn]'s ungranted requests wait on *)
  may_initiate : int -> bool;
      (** whether this transaction starts probe rounds (2PL only in the
          unified system) *)
  on_deadlock : int -> unit;
      (** invoked at the initiator's site when its probe came home *)
}

type t

val create : Ccdb_sim.Engine.t -> Ccdb_sim.Net.t -> config -> callbacks -> t

val txn_blocked : t -> int -> unit
(** Arm (or re-arm) the probe timer for a transaction that just started
    waiting.  Idempotent while a timer is armed. *)

val txn_unblocked : t -> int -> unit
(** The transaction stopped waiting (granted, committed, or aborted):
    cancel its timer and invalidate its outstanding rounds. *)

val txn_progress : t -> int -> unit
(** The transaction received one of its grants but still waits for others:
    invalidate outstanding rounds and pending suspicion (phantom
    suppression). *)

val rounds_started : t -> int
val deadlocks_found : t -> int
