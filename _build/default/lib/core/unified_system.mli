(** The unified concurrency-control system (section 4 of Wang & Li 1988).

    One system runs transactions of all three protocols concurrently over
    the {!Semi_lock_queue}s:

    - {b 2PL} transactions queue FCFS (via the queue-local precedence),
      lock, compute, release; deadlocks are broken by the centralized
      detector, which — per Corollary 2 — only ever needs to abort a 2PL
      transaction.
    - {b T/O} transactions carry a global timestamp; a rejection restarts
      them with a fresh timestamp.  After computing, a transaction holding
      only normal grants releases directly; one holding pre-scheduled grants
      transforms its locks into semi-locks (its writes are implemented at
      that instant and it counts as executed), then releases once every
      grant has become normal.
    - {b PA} transactions run the two-phase agreement of section 3.4 on top
      of the same queues: back-offs, the agreed TS', grant revocation.

    With [semi_locks = false] the system runs the paper's simpler
    unification (full locking for everyone, section 4.2's first solution);
    T/O transactions then hold read/write locks to release like 2PL, which
    sacrifices T/O concurrency — the E8 ablation measures exactly this. *)

type config = {
  semi_locks : bool;
  restart_delay : float;  (** delay before a restarted transaction retries *)
  detection : Ccdb_protocols.Deadlock.detection;
      (** centralized WFG scan or Chandy-Misra-Haas edge-chasing; only 2PL
          transactions ever initiate probes or get aborted (Corollary 2) *)
  backoff_interval : int; (** INT of PA timestamp tuples *)
}

val default_config : config
(** semi_locks true, restart_delay 50., centralized detection every 100. at
    site 0, backoff_interval 8. *)

type payload_fn = (int -> int) -> (int * int) list
(** Same convention as the pure systems: reads-in, writes-out. *)

type t

val create :
  ?config:config ->
  ?reselect:(Ccdb_model.Txn.t -> Ccdb_model.Protocol.t) ->
  Ccdb_protocols.Runtime.t ->
  t
(** [reselect] implements the paper's future-work item (4), "allowing
    transactions to change their concurrency control methods": it is
    consulted on every restart (deadlock victims and T/O rejections) and the
    transaction's remaining attempts run under the protocol it returns.
    Safe because a restarted transaction holds nothing when it re-enters:
    every queue entry of the previous attempt has been withdrawn. *)

val submit : t -> ?payload:payload_fn -> Ccdb_model.Txn.t -> unit
(** Runs the transaction under the protocol in its [protocol] field.
    @raise Invalid_argument on a duplicate live transaction id. *)

val active : t -> int
(** Transactions submitted but not yet executed. *)

val draining : t -> int
(** Executed T/O transactions still holding semi-locks. *)

val detector_cycles : t -> int

val config : t -> config

val debug_dump : t -> string
(** Human-readable snapshot of every live transaction and every non-empty
    queue (diagnostics; also what the livelock guard prints on failure). *)

val unimplemented_requests :
  t -> (Ccdb_model.Precedence.t * Ccdb_model.Protocol.t) list
(** Every request not yet {e implemented} in the paper's section 4.3 sense,
    as (precedence, protocol) sorted by precedence: ungranted entries, plus
    granted 2PL/PA entries awaiting release, plus granted T/O writes not yet
    transformed.  Granted T/O reads are implemented at grant and excluded.
    Theorem 3: when the system is blocked, the head of this list belongs to
    a 2PL transaction — tested directly against engineered deadlocks. *)
