(** Dynamic concurrency control: the complete system of the paper.

    Wraps {!Unified_system} with the STL-based selector — every submitted
    transaction is routed to the protocol (2PL, T/O or PA) whose estimated
    system-throughput loss is smallest, with parameters estimated online
    from the run itself (section 5). *)

type config = {
  unified : Unified_system.config;
  candidates : Ccdb_model.Protocol.t list;
  class_cache_ttl : float;
  priors : Ccdb_stl.Estimator.priors;
  reselect_on_restart : bool;
      (** the paper's future-work item (4): re-run the selector whenever a
          transaction restarts, letting it switch protocol mid-life *)
  criterion : Ccdb_stl.Selector.criterion;
      (** what the selector minimises; [Min_stl] is the paper's choice *)
}

val default_config : config
(** reselect_on_restart is off by default (the paper's base design). *)

type t

val create : ?config:config -> Ccdb_protocols.Runtime.t -> t

val submit : t -> ?payload:Unified_system.payload_fn -> Ccdb_model.Txn.t -> unit
(** The transaction's own [protocol] field is ignored; the selector decides.
    @raise Invalid_argument on a duplicate live transaction id. *)

val last_verdict : t -> Ccdb_stl.Selector.verdict option
(** Selection of the most recent submission (diagnostics). *)

val decisions : t -> (Ccdb_model.Protocol.t * int) list
(** Transactions routed to each protocol so far. *)

val unified : t -> Unified_system.t
val estimator : t -> Ccdb_stl.Estimator.t
