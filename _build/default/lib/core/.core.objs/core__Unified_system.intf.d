lib/core/unified_system.mli: Ccdb_model Ccdb_protocols
