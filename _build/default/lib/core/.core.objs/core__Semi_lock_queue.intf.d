lib/core/semi_lock_queue.mli: Ccdb_model
