lib/core/unified_system.ml: Buffer Ccdb_model Ccdb_protocols Ccdb_sim Ccdb_storage Hashtbl Int List Printf Semi_lock_queue String
