lib/core/dynamic_cc.mli: Ccdb_model Ccdb_protocols Ccdb_stl Unified_system
