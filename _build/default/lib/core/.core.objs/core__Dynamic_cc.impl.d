lib/core/dynamic_cc.ml: Ccdb_model Ccdb_protocols Ccdb_stl Unified_system
