lib/core/semi_lock_queue.ml: Ccdb_model List Option
