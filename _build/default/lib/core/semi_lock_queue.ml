type response = Accepted | Rejected | Backoff of int

type entry = {
  txn : int;
  site : int;
  protocol : Ccdb_model.Protocol.t;
  op : Ccdb_model.Op.kind;
  interval : int;
  epoch : int;
  mutable prec : Ccdb_model.Precedence.t;
  mutable blocked : bool;
  mutable lock : Ccdb_model.Lock.mode option;
  mutable schedule : Ccdb_model.Lock.schedule;
  mutable grant_seq : int;
  mutable granted_at : float;
  mutable implemented : bool;
}

type grant = { entry : entry; schedule : Ccdb_model.Lock.schedule }

type t = {
  semi_locks : bool;
  mutable entries : entry list; (* sorted by unified precedence *)
  mutable max_ts_seen : int;    (* biggest timestamp ever in this queue *)
  mutable arrival_counter : int;
  mutable grant_counter : int;
  mutable r_released : int;     (* high-water marks of released entries *)
  mutable w_released : int;
}

let create ?(semi_locks = true) () =
  { semi_locks; entries = []; max_ts_seen = 0; arrival_counter = 0;
    grant_counter = 0; r_released = -1; w_released = -1 }

let compare_entries a b = Ccdb_model.Precedence.compare a.prec b.prec

let sort t = t.entries <- List.stable_sort compare_entries t.entries

let granted_max t op =
  List.fold_left
    (fun acc e ->
      if e.lock <> None && Ccdb_model.Op.equal e.op op then
        max acc e.prec.Ccdb_model.Precedence.ts
      else acc)
    (-1) t.entries

let r_ts t = max t.r_released (granted_max t Ccdb_model.Op.Read)
let w_ts t = max t.w_released (granted_max t Ccdb_model.Op.Write)

let request t ~txn ~site ~protocol ~ts ~interval ~epoch ~op =
  if List.exists (fun e -> e.txn = txn) t.entries then
    invalid_arg "Semi_lock_queue.request: duplicate request";
  let fresh prec blocked =
    { txn; site; protocol; op; interval; epoch; prec; blocked; lock = None;
      schedule = Ccdb_model.Lock.Normal; grant_seq = -1; granted_at = 0.;
      implemented = false }
  in
  match protocol, ts with
  | Ccdb_model.Protocol.Two_pl, None ->
    (* 2PL precedence: the biggest timestamp ever seen here, tail position *)
    let prec =
      Ccdb_model.Precedence.queue_local ~ts:t.max_ts_seen
        ~arrival:t.arrival_counter
    in
    t.arrival_counter <- t.arrival_counter + 1;
    t.entries <- t.entries @ [ fresh prec false ];
    sort t;
    Accepted
  | (Ccdb_model.Protocol.T_o | Ccdb_model.Protocol.Pa), Some ts ->
    let floor =
      match op with
      | Ccdb_model.Op.Read -> w_ts t
      | Ccdb_model.Op.Write -> max (w_ts t) (r_ts t)
    in
    let admit ts blocked =
      t.max_ts_seen <- max t.max_ts_seen ts;
      let prec = Ccdb_model.Precedence.timestamped ~ts ~site ~txn in
      t.entries <- t.entries @ [ fresh prec blocked ];
      sort t
    in
    if ts > floor then begin
      admit ts false;
      Accepted
    end
    else begin
      match protocol with
      | Ccdb_model.Protocol.T_o -> Rejected
      | Ccdb_model.Protocol.Pa ->
        let tuple = Ccdb_model.Timestamp.Tuple.make ~ts ~interval in
        let ts' = Ccdb_model.Timestamp.Tuple.backoff tuple ~floor in
        admit ts' true;
        Backoff ts'
      | Ccdb_model.Protocol.Two_pl -> assert false
    end
  | Ccdb_model.Protocol.Two_pl, Some _ ->
    invalid_arg "Semi_lock_queue.request: 2PL requests carry no timestamp"
  | (Ccdb_model.Protocol.T_o | Ccdb_model.Protocol.Pa), None ->
    invalid_arg "Semi_lock_queue.request: timestamped protocol needs a ts"

let update_ts t ~txn ~ts =
  match List.find_opt (fun e -> e.txn = txn) t.entries with
  | None -> `Absent
  | Some e ->
    let revoked = e.lock <> None in
    t.max_ts_seen <- max t.max_ts_seen ts;
    e.prec <-
      Ccdb_model.Precedence.timestamped ~ts ~site:e.site ~txn:e.txn;
    e.blocked <- false;
    e.lock <- None;
    e.schedule <- Ccdb_model.Lock.Normal;
    e.grant_seq <- -1;
    sort t;
    if revoked then `Revoked else `Moved

let lock_mode_for t (e : entry) =
  (* the lock mode this entry would be granted, per protocol and queue mode *)
  match e.protocol, e.op with
  | (Ccdb_model.Protocol.Two_pl | Ccdb_model.Protocol.Pa), Ccdb_model.Op.Read ->
    Ccdb_model.Lock.Rl
  | (Ccdb_model.Protocol.Two_pl | Ccdb_model.Protocol.Pa), Ccdb_model.Op.Write ->
    Ccdb_model.Lock.Wl
  | Ccdb_model.Protocol.T_o, Ccdb_model.Op.Read ->
    if t.semi_locks then Ccdb_model.Lock.Srl else Ccdb_model.Lock.Rl
  | Ccdb_model.Protocol.T_o, Ccdb_model.Op.Write -> Ccdb_model.Lock.Wl

(* May [e] be granted now, given the currently held locks?  Returns the
   grant's schedule when allowed. *)
let grant_check t (e : entry) =
  let held =
    List.filter_map (fun e' -> Option.map (fun m -> m) e'.lock)
      (List.filter (fun e' -> e'.txn <> e.txn) t.entries)
  in
  let has mode_pred = List.exists mode_pred held in
  let to_semi_rules =
    (* semi-lock grant rules, section 4.2 rule 2 *)
    match e.protocol, e.op with
    | (Ccdb_model.Protocol.Two_pl | Ccdb_model.Protocol.Pa), Ccdb_model.Op.Read ->
      (* RL once no WL or SWL is held *)
      if has Ccdb_model.Lock.is_write_mode then None
      else Some Ccdb_model.Lock.Normal
    | (Ccdb_model.Protocol.Two_pl | Ccdb_model.Protocol.Pa), Ccdb_model.Op.Write ->
      (* WL once nothing is held *)
      if held <> [] then None else Some Ccdb_model.Lock.Normal
    | Ccdb_model.Protocol.T_o, Ccdb_model.Op.Read ->
      (* SRL once no plain WL is held; pre-scheduled under a held SWL *)
      if has (fun m -> Ccdb_model.Lock.equal m Ccdb_model.Lock.Wl) then None
      else if has (fun m -> Ccdb_model.Lock.equal m Ccdb_model.Lock.Swl) then
        Some Ccdb_model.Lock.Pre_scheduled
      else Some Ccdb_model.Lock.Normal
    | Ccdb_model.Protocol.T_o, Ccdb_model.Op.Write ->
      (* WL once no RL and no WL held; pre-scheduled under held SRL/SWL *)
      if
        has (fun m ->
            Ccdb_model.Lock.equal m Ccdb_model.Lock.Rl
            || Ccdb_model.Lock.equal m Ccdb_model.Lock.Wl)
      then None
      else if has Ccdb_model.Lock.is_semi then Some Ccdb_model.Lock.Pre_scheduled
      else Some Ccdb_model.Lock.Normal
  in
  let full_lock_rules =
    (* the paper's simple alternative: everything locks like 2PL/PA *)
    match e.op with
    | Ccdb_model.Op.Read ->
      if has Ccdb_model.Lock.is_write_mode then None
      else Some Ccdb_model.Lock.Normal
    | Ccdb_model.Op.Write ->
      if held <> [] then None else Some Ccdb_model.Lock.Normal
  in
  if t.semi_locks then to_semi_rules else full_lock_rules

let grant_ready t ~now =
  let newly = ref [] in
  (* HD discipline: walk in precedence order past granted entries; grant the
     frontier while possible, stop at the first entry that keeps waiting. *)
  let rec scan = function
    | [] -> ()
    | e :: rest ->
      if e.lock <> None then scan rest
      else if e.blocked then ()
      else begin
        match grant_check t e with
        | None -> ()
        | Some schedule ->
          e.lock <- Some (lock_mode_for t e);
          e.schedule <- schedule;
          e.grant_seq <- t.grant_counter;
          t.grant_counter <- t.grant_counter + 1;
          e.granted_at <- now;
          newly := { entry = e; schedule } :: !newly;
          scan rest
      end
  in
  scan t.entries;
  List.rev !newly

let transform t ~txn =
  match List.find_opt (fun e -> e.txn = txn) t.entries with
  | None -> None
  | Some e ->
    (match e.lock with
     | Some mode -> e.lock <- Some (Ccdb_model.Lock.to_semi mode)
     | None -> ());
    Some e

(* Pre-scheduled locks whose earlier conflicting grants are now all gone. *)
let promotions t =
  List.filter
    (fun e ->
      e.lock <> None
      && Ccdb_model.Lock.schedule_equal e.schedule Ccdb_model.Lock.Pre_scheduled
      && not
           (List.exists
              (fun e' ->
                e'.txn <> e.txn && e'.grant_seq >= 0
                && e'.grant_seq < e.grant_seq
                && match e'.lock, e.lock with
                   | Some m', Some m -> Ccdb_model.Lock.conflicts m' m
                   | _, _ -> false)
              t.entries))
    t.entries

let remove t ~txn ~advance_hwm =
  match List.find_opt (fun e -> e.txn = txn) t.entries with
  | None -> None
  | Some e ->
    t.entries <- List.filter (fun e' -> e'.txn <> txn) t.entries;
    if advance_hwm then begin
      let ts = e.prec.Ccdb_model.Precedence.ts in
      match e.op with
      | Ccdb_model.Op.Read -> t.r_released <- max t.r_released ts
      | Ccdb_model.Op.Write -> t.w_released <- max t.w_released ts
    end;
    let promoted = promotions t in
    List.iter
      (fun (p : entry) -> p.schedule <- Ccdb_model.Lock.Normal)
      promoted;
    Some (e, promoted)

let release t ~txn = remove t ~txn ~advance_hwm:true
let abort t ~txn = remove t ~txn ~advance_hwm:false

let waits_for t =
  let edges = ref [] in
  let rec scan earlier = function
    | [] -> ()
    | e :: rest ->
      (* blocked PA entries wait on their own issuer, not on other
         transactions, so they contribute no outgoing edges *)
      if e.lock = None && not e.blocked then
        List.iter
          (fun e' ->
            if e'.txn <> e.txn then begin
              let conflicting =
                Ccdb_model.Op.conflicts e'.op e.op
              in
              let frontier = e'.lock = None in
              if conflicting || frontier then edges := (e.txn, e'.txn) :: !edges
            end)
          earlier;
      scan (e :: earlier) rest
  in
  scan [] t.entries;
  (* a held pre-scheduled lock is itself a wait: its owner cannot release
     (and a draining T/O transaction cannot finish) until every conflicting
     lock granted earlier is released.  Without these edges a deadlock
     running through a draining transaction is invisible to detection. *)
  List.iter
    (fun e ->
      if
        e.lock <> None
        && Ccdb_model.Lock.schedule_equal e.schedule
             Ccdb_model.Lock.Pre_scheduled
      then
        List.iter
          (fun e' ->
            match e'.lock, e.lock with
            | Some m', Some m
              when e'.txn <> e.txn && e'.grant_seq >= 0
                   && e'.grant_seq < e.grant_seq
                   && Ccdb_model.Lock.conflicts m' m ->
              edges := (e.txn, e'.txn) :: !edges
            | _, _ -> ())
          t.entries)
    t.entries;
  List.sort_uniq compare !edges

let entries t = t.entries
