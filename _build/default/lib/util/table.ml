type align = Left | Right

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : string list list; (* reversed *)
  width : int;
}

let create ~columns =
  { headers = List.map fst columns;
    aligns = List.map snd columns;
    rows = [];
    width = List.length columns }

let add_row t row =
  if List.length row <> t.width then
    invalid_arg "Table.add_row: row width mismatch";
  t.rows <- row :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      t.headers
  in
  let render_row cells =
    let padded =
      List.mapi
        (fun i cell -> pad (List.nth t.aligns i) (List.nth widths i) cell)
        cells
    in
    String.concat "  " padded
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (render_row t.headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let csv_field s =
  let needs_quote =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') s
  in
  if needs_quote then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let to_csv t =
  let line cells = String.concat "," (List.map csv_field cells) in
  String.concat "\n" (line t.headers :: List.map line (List.rev t.rows)) ^ "\n"

let fmt_float ?(decimals = 2) x =
  if Float.is_nan x then "-" else Printf.sprintf "%.*f" decimals x
