type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable samples : float list;
  (* sorted cache, invalidated on add *)
  mutable sorted : float array option;
}

let create () =
  { n = 0; mean = 0.; m2 = 0.; sum = 0.; min_v = infinity; max_v = neg_infinity;
    samples = []; sorted = None }

let add t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x;
  t.samples <- x :: t.samples;
  t.sorted <- None

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then 0. else t.mean
let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)

let min_value t =
  if t.n = 0 then invalid_arg "Stats.min_value: empty";
  t.min_v

let max_value t =
  if t.n = 0 then invalid_arg "Stats.max_value: empty";
  t.max_v

let sorted t =
  match t.sorted with
  | Some a -> a
  | None ->
    let a = Array.of_list t.samples in
    Array.sort compare a;
    t.sorted <- Some a;
    a

let percentile t p =
  if t.n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let a = sorted t in
  let rank = int_of_float (ceil (p /. 100. *. float_of_int t.n)) in
  let idx = max 0 (min (t.n - 1) (rank - 1)) in
  a.(idx)

let merge a b =
  let t = create () in
  List.iter (add t) (List.rev a.samples);
  List.iter (add t) (List.rev b.samples);
  t

module Ci = struct
  let mean_ci95 xs =
    let n = Array.length xs in
    if n = 0 then (0., 0.)
    else begin
      let mean = Array.fold_left ( +. ) 0. xs /. float_of_int n in
      if n < 2 then (mean, 0.)
      else begin
        let var =
          Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs
          /. float_of_int (n - 1)
        in
        let halfwidth = 1.96 *. sqrt (var /. float_of_int n) in
        (mean, halfwidth)
      end
    end
end
