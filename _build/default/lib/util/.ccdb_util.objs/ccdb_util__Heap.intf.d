lib/util/heap.mli:
