lib/util/rng.mli:
