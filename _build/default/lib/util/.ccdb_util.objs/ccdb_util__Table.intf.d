lib/util/table.mli:
