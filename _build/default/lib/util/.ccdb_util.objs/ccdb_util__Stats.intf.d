lib/util/stats.mli:
