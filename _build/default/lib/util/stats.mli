(** Online statistics accumulators.

    {!t} keeps exact mean/variance/extrema via Welford's algorithm plus the
    full sample (simulation runs are bounded, so retaining samples for exact
    percentiles is affordable and keeps results reproducible). *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val total : t -> float
val mean : t -> float
(** Mean of the observations; [0.] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [0.] with fewer than two observations. *)

val stddev : t -> float
val min_value : t -> float
(** @raise Invalid_argument when empty. *)

val max_value : t -> float
(** @raise Invalid_argument when empty. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0, 100\]], nearest-rank on the sorted
    sample.  @raise Invalid_argument when empty or [p] out of range. *)

val merge : t -> t -> t
(** Combine two accumulators into a fresh one. *)

(** Confidence intervals across replications. *)
module Ci : sig
  val mean_ci95 : float array -> float * float
  (** [mean_ci95 xs] is [(mean, halfwidth)] of a 95% normal-approximation
      confidence interval over replication means ([halfwidth = 0.] for fewer
      than two points). *)
end
