type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

(* SplitMix64 finalizer (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = bits64 t in
  { state = s }

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (bits64 t) mask) in
  v mod bound

let float t bound =
  (* 53 random bits mapped to [0, 1), scaled. *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  let unit = Int64.to_float bits *. (1.0 /. 9007199254740992.0) in
  unit *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  if mean <= 0. then invalid_arg "Rng.exponential: mean must be positive";
  let u = 1.0 -. float t 1.0 in
  -. mean *. log u

let uniform_in t ~lo ~hi = lo +. float t (hi -. lo)

let zipf_sampler ~n ~theta =
  if n <= 0 then invalid_arg "Rng.zipf_sampler: n must be positive";
  if theta < 0. then invalid_arg "Rng.zipf_sampler: theta must be >= 0";
  let weights = Array.init n (fun i -> 1.0 /. ((float_of_int (i + 1)) ** theta)) in
  let cdf = Array.make n 0.0 in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. w;
      cdf.(i) <- !acc /. total)
    weights;
  fun t ->
    let u = float t 1.0 in
    (* binary search for the first index with cdf.(i) >= u *)
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cdf.(mid) >= u then search lo mid else search (mid + 1) hi
    in
    search 0 (n - 1)

let shuffle t arr =
  let len = Array.length arr in
  for i = len - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_distinct t ~n ~universe =
  if n < 0 || n > universe then
    invalid_arg "Rng.sample_distinct: need 0 <= n <= universe";
  (* Floyd's algorithm: O(n) expected draws, no O(universe) allocation. *)
  let module Iset = Set.Make (Int) in
  let rec fill chosen j =
    if j >= universe then chosen
    else
      let r = int t (j + 1) in
      let chosen = if Iset.mem r chosen then Iset.add j chosen else Iset.add r chosen in
      fill chosen (j + 1)
  in
  let chosen = fill Iset.empty (universe - n) in
  Iset.elements chosen
