(** Plain-text table rendering for experiment output.

    Renders aligned monospace tables of the kind the benchmark harness prints
    for each reproduced experiment, plus CSV export for offline plotting. *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t
(** [create ~columns] starts a table with the given header cells. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val render : t -> string
(** Aligned text rendering, including a header separator line. *)

val to_csv : t -> string
(** RFC-4180-ish CSV (quotes fields containing commas/quotes/newlines). *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point float formatting helper ([decimals] defaults to 2);
    renders NaN as ["-"]. *)
