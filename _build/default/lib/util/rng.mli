(** Deterministic, splittable pseudo-random number generator.

    Every stochastic component of the simulator draws from an [Rng.t] so that
    a run is a pure function of its configuration and seed.  The generator is
    a 64-bit SplitMix64: fast, statistically adequate for simulation
    workloads, and trivially splittable so independent subsystems (arrival
    process, data-access choice, network jitter, ...) can own independent
    streams that do not perturb each other when one subsystem draws more. *)

type t

val create : seed:int -> t
(** [create ~seed] returns a fresh generator.  Equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] derives a new independent generator from [t], advancing [t].
    Used to give each subsystem its own stream. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).  @raise Invalid_argument
    if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** [exponential t ~mean] draws from an exponential distribution with the
    given mean (i.e. rate [1. /. mean]).  @raise Invalid_argument if
    [mean <= 0.]. *)

val uniform_in : t -> lo:float -> hi:float -> float
(** Uniform draw from [\[lo, hi)]. *)

val zipf_sampler : n:int -> theta:float -> (t -> int)
(** [zipf_sampler ~n ~theta] precomputes a Zipfian CDF over [{0, ..., n-1}]
    with skew [theta >= 0.] ([theta = 0.] is uniform) and returns a sampler
    closure.  @raise Invalid_argument if [n <= 0] or [theta < 0.]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample_distinct : t -> n:int -> universe:int -> int list
(** [sample_distinct t ~n ~universe] draws [n] distinct integers from
    [0, universe), in increasing order.  @raise Invalid_argument if
    [n > universe] or [n < 0]. *)
