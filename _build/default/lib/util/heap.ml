(* Binary min-heap backed by a dynamic array.  Each slot stores the element
   together with its handle record; the handle tracks the slot index so that
   [remove] can find and delete an arbitrary element in O(log n). *)

type slot = { mutable index : int }

type handle = slot

type 'a cell = { value : 'a; slot : slot }

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable cells : 'a cell option array;
  mutable size : int;
}

let create ~cmp = { cmp; cells = Array.make 16 None; size = 0 }

let length t = t.size
let is_empty t = t.size = 0

let cell_at t i =
  match t.cells.(i) with
  | Some c -> c
  | None -> assert false

let set t i c =
  t.cells.(i) <- Some c;
  c.slot.index <- i

let grow t =
  let cap = Array.length t.cells in
  if t.size >= cap then begin
    let bigger = Array.make (cap * 2) None in
    Array.blit t.cells 0 bigger 0 cap;
    t.cells <- bigger
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    let ci = cell_at t i and cp = cell_at t parent in
    if t.cmp ci.value cp.value < 0 then begin
      set t parent ci;
      set t i cp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.cmp (cell_at t l).value (cell_at t !smallest).value < 0 then
    smallest := l;
  if r < t.size && t.cmp (cell_at t r).value (cell_at t !smallest).value < 0 then
    smallest := r;
  if !smallest <> i then begin
    let ci = cell_at t i and cs = cell_at t !smallest in
    set t i cs;
    set t !smallest ci;
    sift_down t !smallest
  end

let push t value =
  grow t;
  let slot = { index = t.size } in
  t.cells.(t.size) <- Some { value; slot };
  t.size <- t.size + 1;
  sift_up t (t.size - 1);
  slot

let peek t = if t.size = 0 then None else Some (cell_at t 0).value

(* Remove the element at slot [i], restoring the heap property. *)
let delete_at t i =
  let removed = cell_at t i in
  removed.slot.index <- -1;
  let last = t.size - 1 in
  t.size <- last;
  if i <> last then begin
    let moved = cell_at t last in
    t.cells.(last) <- None;
    set t i moved;
    sift_down t i;
    sift_up t i
  end
  else t.cells.(last) <- None;
  removed.value

let pop t = if t.size = 0 then None else Some (delete_at t 0)

let mem t h = h.index >= 0 && h.index < t.size
  && (match t.cells.(h.index) with Some c -> c.slot == h | None -> false)

let remove t h =
  if mem t h then begin
    ignore (delete_at t h.index);
    true
  end
  else false

let clear t =
  for i = 0 to t.size - 1 do
    (match t.cells.(i) with Some c -> c.slot.index <- -1 | None -> ());
    t.cells.(i) <- None
  done;
  t.size <- 0

let to_sorted_list t =
  let values = ref [] in
  for i = 0 to t.size - 1 do
    values := (cell_at t i).value :: !values
  done;
  List.sort t.cmp !values
