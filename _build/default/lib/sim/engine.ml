type time = float

type event = { at : time; seq : int; action : unit -> unit }

type handle = Ccdb_util.Heap.handle

type t = {
  queue : event Ccdb_util.Heap.t;
  mutable clock : time;
  mutable seq : int;
  mutable fired : int;
}

let compare_event a b =
  let c = compare a.at b.at in
  if c <> 0 then c else compare a.seq b.seq

let create () =
  { queue = Ccdb_util.Heap.create ~cmp:compare_event;
    clock = 0.;
    seq = 0;
    fired = 0 }

let now t = t.clock

let schedule_at t ~at action =
  if at < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  let ev = { at; seq = t.seq; action } in
  t.seq <- t.seq + 1;
  Ccdb_util.Heap.push t.queue ev

let schedule t ~after action =
  if after < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~at:(t.clock +. after) action

let cancel t h = Ccdb_util.Heap.remove t.queue h

let step t =
  match Ccdb_util.Heap.pop t.queue with
  | None -> false
  | Some ev ->
    t.clock <- ev.at;
    t.fired <- t.fired + 1;
    ev.action ();
    true

let run ?until ?max_events t =
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Ccdb_util.Heap.peek t.queue with
    | None -> continue := false
    | Some ev ->
      (match until with
       | Some horizon when ev.at > horizon ->
         t.clock <- max t.clock horizon;
         continue := false
       | _ ->
         ignore (step t);
         decr budget)
  done

let pending t = Ccdb_util.Heap.length t.queue
let processed t = t.fired
