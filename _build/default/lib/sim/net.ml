type config = {
  sites : int;
  base_delay : float;
  jitter : float;
  local_delay : float;
}

let default_config ~sites =
  { sites; base_delay = 10.0; jitter = 2.0; local_delay = 0.1 }

type slowdown = {
  site : int option; (* None = whole network *)
  from_time : float;
  until_time : float;
  factor : float;
}

type t = {
  engine : Engine.t;
  rng : Ccdb_util.Rng.t;
  config : config;
  counts : (string, int ref) Hashtbl.t;
  mutable total : int;
  mutable slowdowns : slowdown list;
  (* Earliest admissible delivery time per ordered (src, dst) pair, to keep
     per-channel delivery FIFO even with jitter. *)
  channel_front : (int * int, float) Hashtbl.t;
}

let create engine rng config =
  if config.sites <= 0 then invalid_arg "Net.create: need at least one site";
  { engine; rng; config; counts = Hashtbl.create 16; total = 0;
    slowdowns = []; channel_front = Hashtbl.create 64 }

let sites t = t.config.sites

let count t kind =
  t.total <- t.total + 1;
  match Hashtbl.find_opt t.counts kind with
  | Some r -> incr r
  | None -> Hashtbl.add t.counts kind (ref 1)

let send t ~src ~dst ~kind deliver =
  let n = t.config.sites in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Net.send: site out of range";
  count t kind;
  let now = Engine.now t.engine in
  let slowdown_factor =
    List.fold_left
      (fun acc s ->
        let applies_window = now >= s.from_time && now < s.until_time in
        let applies_site =
          match s.site with None -> true | Some w -> w = src || w = dst
        in
        if applies_window && applies_site then acc *. s.factor else acc)
      1. t.slowdowns
  in
  let delay =
    (if src = dst then t.config.local_delay
     else t.config.base_delay +. Ccdb_util.Rng.float t.rng t.config.jitter)
    *. slowdown_factor
  in
  let naive = Engine.now t.engine +. delay in
  let front =
    match Hashtbl.find_opt t.channel_front (src, dst) with
    | Some f -> f
    | None -> 0.
  in
  let at = if naive > front then naive else front +. 1e-9 in
  Hashtbl.replace t.channel_front (src, dst) at;
  ignore (Engine.schedule_at t.engine ~at deliver)

let messages_sent t = t.total

let messages_by_kind t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counts []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset_counters t =
  Hashtbl.reset t.counts;
  t.total <- 0

let add_slowdown t site ~from_time ~until_time ~factor =
  if from_time < 0. || until_time <= from_time then
    invalid_arg "Net.inject_slowdown: bad time window";
  if factor < 1. then invalid_arg "Net.inject_slowdown: factor < 1";
  t.slowdowns <- { site; from_time; until_time; factor } :: t.slowdowns

let inject_slowdown t ~from_time ~until_time ~factor =
  add_slowdown t None ~from_time ~until_time ~factor

let inject_site_slowdown t ~site ~from_time ~until_time ~factor =
  if site < 0 || site >= t.config.sites then
    invalid_arg "Net.inject_site_slowdown: site out of range";
  add_slowdown t (Some site) ~from_time ~until_time ~factor
