lib/sim/engine.mli:
