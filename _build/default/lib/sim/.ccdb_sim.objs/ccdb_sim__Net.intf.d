lib/sim/net.mli: Ccdb_util Engine
