lib/sim/net.ml: Ccdb_util Engine Hashtbl List
