lib/sim/engine.ml: Ccdb_util
