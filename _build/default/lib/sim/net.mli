(** Simulated network between database sites.

    Messages between distinct sites experience [base_delay] plus uniform
    jitter; messages a site sends to itself experience [local_delay] (the
    cost of the local request path).  Delivery between any ordered pair of
    sites is FIFO, matching the paper's implicit assumption that requests
    from a request issuer reach a data queue in order.  Every send is counted
    by message kind so experiments can report communication cost (the paper's
    stated weakness of PA). *)

type t

type config = {
  sites : int;           (** number of sites, numbered [0 .. sites-1] *)
  base_delay : float;    (** fixed one-way latency between distinct sites *)
  jitter : float;        (** uniform extra latency in [0, jitter) *)
  local_delay : float;   (** latency when [src = dst] *)
}

val default_config : sites:int -> config
(** 10.0 base delay, 2.0 jitter, 0.1 local delay. *)

val create : Engine.t -> Ccdb_util.Rng.t -> config -> t

val sites : t -> int

val send : t -> src:int -> dst:int -> kind:string -> (unit -> unit) -> unit
(** [send t ~src ~dst ~kind deliver] schedules [deliver] after the simulated
    transit delay and counts one message of [kind].
    @raise Invalid_argument on an out-of-range site. *)

val messages_sent : t -> int
(** Total messages sent so far. *)

val messages_by_kind : t -> (string * int) list
(** Per-kind counts, sorted by kind name. *)

val reset_counters : t -> unit
(** Zeroes the message counters (used to exclude warm-up from metrics). *)

(** {2 Failure injection}

    Degradations model transient network trouble (congestion, partial
    partitions) without breaking delivery guarantees: messages are delayed,
    never lost, and per-channel FIFO still holds.  Concurrency-control
    correctness must survive arbitrary delay — the test suite injects spikes
    and re-checks serializability. *)

val inject_slowdown : t -> from_time:float -> until_time:float -> factor:float -> unit
(** Multiplies the transit delay of every message {e sent} in
    [\[from_time, until_time)] by [factor >= 1.].  Multiple overlapping
    injections compound.  @raise Invalid_argument on a bad window or
    [factor < 1.]. *)

val inject_site_slowdown :
  t -> site:int -> from_time:float -> until_time:float -> factor:float -> unit
(** Like {!inject_slowdown} but only for messages to or from [site]
    (a congested or flapping node). *)
