(** Read/write operation kinds and the conflict relation.

    Two operations conflict when they access the same data item and at least
    one of them is a write (section 2 of the paper). *)

type kind = Read | Write

val equal : kind -> kind -> bool
val to_string : kind -> string
val pp : Format.formatter -> kind -> unit

val conflicts : kind -> kind -> bool
(** [conflicts a b] for two operations on the {e same} data item. *)
