(** The three concurrency-control protocols integrated by the paper.

    Each transaction carries one of these; the unified queue manager treats
    requests differently according to the issuing transaction's protocol
    (Wang & Li 1988, section 4). *)

type t =
  | Two_pl  (** static Two-Phase Locking: FCFS queueing + locks *)
  | T_o     (** Basic Timestamp Ordering: late requests rejected, restart *)
  | Pa      (** Precedence Agreement: timestamp back-off negotiation *)

val all : t list
val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val of_string : string -> t option
(** Recognises ["2pl"], ["to"], ["t/o"], ["pa"] (case-insensitive). *)
