(** Transaction descriptors.

    A legal transaction (section 2) has a read phase, a local-computing
    phase, and a write phase, with predeclared read and write sets of
    {e logical} data items.  An item present in both sets is accessed through
    a single write request — the write lock covers the read, matching the
    static (predeclared) model the paper analyses and keeping the precedence
    assignment one-to-one per queue. *)

type t = {
  id : int;               (** globally unique transaction id *)
  site : int;             (** the site of the issuing request issuer *)
  read_set : int list;    (** logical items read (sorted, distinct) *)
  write_set : int list;   (** logical items written (sorted, distinct) *)
  compute_time : float;   (** duration of the local-computing phase *)
  protocol : Protocol.t;  (** concurrency-control protocol for this txn *)
}

val make :
  id:int ->
  site:int ->
  read_set:int list ->
  write_set:int list ->
  compute_time:float ->
  protocol:Protocol.t ->
  t
(** Normalises the sets (sorts, dedups, removes write-set items from the
    read set).  @raise Invalid_argument if both sets are empty, if
    [compute_time < 0.], or if any item id is negative. *)

val effective_reads : t -> int list
(** Items accessed through read requests ([read_set] minus [write_set] —
    already removed by [make], so this is just [read_set]). *)

val size : t -> int
(** Number of logical requests ([st] in the paper). *)

val accesses : t -> (int * Op.kind) list
(** All (item, kind) pairs, reads then writes, each item once. *)

val pp : Format.formatter -> t -> unit
