(** The four lock modes of the semi-lock protocol (section 4.2).

    A datum is {e semi-locked} when the T/O protocol would consider it
    unlocked but 2PL and PA must still treat it as locked.  Semi-read (SRL)
    and semi-write (SWL) locks arise in two ways: a T/O read request is
    granted an SRL directly, and an executed T/O transaction holding
    pre-scheduled grants transforms its remaining RL/WL locks into SRL/SWL
    while it waits for its grants to become normal. *)

type mode =
  | Rl   (** read lock *)
  | Wl   (** write lock *)
  | Srl  (** semi-read lock *)
  | Swl  (** semi-write lock *)

val equal : mode -> mode -> bool
val to_string : mode -> string
val pp : Format.formatter -> mode -> unit

val conflicts : mode -> mode -> bool
(** Two locks on the same item conflict iff at least one is WL or SWL. *)

val is_semi : mode -> bool
(** SRL or SWL. *)

val is_write_mode : mode -> bool
(** WL or SWL. *)

val to_semi : mode -> mode
(** RL -> SRL, WL -> SWL; semi modes are unchanged. *)

(** Whether a granted lock is pre-scheduled (a conflicting lock granted
    earlier is still held) or normal. *)
type schedule = Normal | Pre_scheduled

val schedule_equal : schedule -> schedule -> bool
val schedule_to_string : schedule -> string
