(** The unified precedence space (UPS) of section 4.1.

    Every request in a data queue carries a precedence.  T/O and PA requests
    use their transaction's timestamp; a 2PL request entering queue [j] is
    assigned the largest timestamp that has ever appeared in queue [j] before
    its arrival, which pins it to the tail and preserves FCFS among 2PL
    requests.  Ties are broken exactly as in the paper:

    + compare timestamp values;
    + compare the site ids of the issuing transactions, a 2PL transaction
      counting as having the {e biggest} site id;
    + if still tied, both requests are 2PL or both are not: two 2PL requests
      compare by arrival order at the data queue, two timestamped requests
      compare by transaction id.

    The resulting order is total on any set of requests in one queue (two
    distinct timestamped requests of different transactions never tie
    completely because site id + transaction id disambiguate; 2PL requests
    in the same queue have distinct arrival ranks). *)

type origin =
  | Timestamped of { site : int; txn : int }
      (** a T/O or PA request: issued by [txn] from [site] *)
  | Queue_local of { arrival : int }
      (** a 2PL request: [arrival] is its arrival rank at this data queue *)

type t = { ts : Timestamp.t; origin : origin }

val timestamped : ts:Timestamp.t -> site:int -> txn:int -> t
val queue_local : ts:Timestamp.t -> arrival:int -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val is_two_pl : t -> bool
(** [true] iff the precedence was assigned queue-locally (a 2PL request). *)
