(** Transaction timestamps and the PA timestamp tuple.

    Timestamps are integers drawn from a per-system monotone counter; the
    paper's back-off arithmetic ([TS' = TS + k * INT], smallest k in N making
    the result acceptable) needs only ordering and addition. *)

type t = int

val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

(** The (TS, INT) tuple carried by every PA transaction (section 3.4). *)
module Tuple : sig
  type nonrec t = { ts : t; interval : int }

  val make : ts:int -> interval:int -> t
  (** @raise Invalid_argument if [interval <= 0]. *)

  val backoff : t -> floor:int -> int
  (** [backoff tuple ~floor] is the smallest [ts + k * interval] with
      [k] in [{1, 2, ...}] that is strictly greater than [floor] — the
      back-off timestamp [TS'_ij] a data queue computes when the request
      arrives too late (section 3.4, step 2c).  When even [k = 1] does not
      clear [floor], larger [k] are taken. *)
end

(** Monotone timestamp source, one per simulated system. *)
module Source : sig
  type nonrec t

  val create : unit -> t

  val next : t -> int
  (** Strictly increasing across calls, starting at 1. *)

  val advance_past : t -> int -> unit
  (** [advance_past src ts] makes subsequent [next] results exceed [ts];
      used when a T/O transaction restarts with a fresh timestamp. *)

  val current : t -> int
  (** The last value handed out (0 initially): a lower bound on every
      future [next] result, which is what a conservative T/O site advertises
      when it has no transaction in flight. *)
end
