type t = int

let compare = Int.compare
let pp = Format.pp_print_int

module Tuple = struct
  type nonrec t = { ts : t; interval : int }

  let make ~ts ~interval =
    if interval <= 0 then invalid_arg "Timestamp.Tuple.make: interval <= 0";
    { ts; interval }

  let backoff { ts; interval } ~floor =
    if ts > floor then ts + interval
    else begin
      (* smallest k >= 1 with ts + k * interval > floor *)
      let gap = floor - ts in
      let k = (gap / interval) + 1 in
      ts + (k * interval)
    end
end

module Source = struct
  type nonrec t = { mutable counter : int }

  let create () = { counter = 0 }

  let next src =
    src.counter <- src.counter + 1;
    src.counter

  let advance_past src ts = if src.counter < ts then src.counter <- ts

  let current src = src.counter
end
