type kind = Read | Write

let equal a b =
  match a, b with
  | Read, Read | Write, Write -> true
  | (Read | Write), _ -> false

let to_string = function Read -> "r" | Write -> "w"
let pp ppf k = Format.pp_print_string ppf (to_string k)

let conflicts a b =
  match a, b with
  | Read, Read -> false
  | Read, Write | Write, Read | Write, Write -> true
