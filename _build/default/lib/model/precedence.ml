type origin =
  | Timestamped of { site : int; txn : int }
  | Queue_local of { arrival : int }

type t = { ts : Timestamp.t; origin : origin }

let timestamped ~ts ~site ~txn = { ts; origin = Timestamped { site; txn } }
let queue_local ~ts ~arrival = { ts; origin = Queue_local { arrival } }

let compare a b =
  let c = Timestamp.compare a.ts b.ts in
  if c <> 0 then c
  else
    match a.origin, b.origin with
    (* Rule 2: a 2PL transaction has the biggest site id. *)
    | Timestamped _, Queue_local _ -> -1
    | Queue_local _, Timestamped _ -> 1
    (* Rule 3, both 2PL: arrival order at the data queue. *)
    | Queue_local { arrival = x }, Queue_local { arrival = y } ->
      Int.compare x y
    (* Rule 2 then rule 3, both timestamped: site id, then transaction id. *)
    | Timestamped { site = sa; txn = ta }, Timestamped { site = sb; txn = tb } ->
      let c = Int.compare sa sb in
      if c <> 0 then c else Int.compare ta tb

let equal a b = compare a b = 0

let is_two_pl t =
  match t.origin with Queue_local _ -> true | Timestamped _ -> false

let pp ppf t =
  match t.origin with
  | Timestamped { site; txn } ->
    Format.fprintf ppf "ts:%d@@s%d/t%d" t.ts site txn
  | Queue_local { arrival } -> Format.fprintf ppf "ts:%d@@q#%d" t.ts arrival
