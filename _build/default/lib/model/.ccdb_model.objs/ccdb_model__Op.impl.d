lib/model/op.ml: Format
