lib/model/protocol.mli: Format
