lib/model/precedence.ml: Format Int Timestamp
