lib/model/timestamp.ml: Format Int
