lib/model/txn.mli: Format Op Protocol
