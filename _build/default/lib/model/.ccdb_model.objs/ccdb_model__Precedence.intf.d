lib/model/precedence.mli: Format Timestamp
