lib/model/lock.ml: Format
