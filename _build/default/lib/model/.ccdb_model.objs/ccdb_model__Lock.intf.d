lib/model/lock.mli: Format
