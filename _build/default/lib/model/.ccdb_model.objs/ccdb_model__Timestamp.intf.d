lib/model/timestamp.mli: Format
