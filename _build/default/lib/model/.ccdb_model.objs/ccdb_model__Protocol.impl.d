lib/model/protocol.ml: Format Int String
