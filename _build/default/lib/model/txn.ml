type t = {
  id : int;
  site : int;
  read_set : int list;
  write_set : int list;
  compute_time : float;
  protocol : Protocol.t;
}

let normalise items = List.sort_uniq Int.compare items

let make ~id ~site ~read_set ~write_set ~compute_time ~protocol =
  if compute_time < 0. then invalid_arg "Txn.make: negative compute_time";
  let write_set = normalise write_set in
  let read_set =
    List.filter (fun i -> not (List.mem i write_set)) (normalise read_set)
  in
  if read_set = [] && write_set = [] then
    invalid_arg "Txn.make: empty access sets";
  List.iter
    (fun i -> if i < 0 then invalid_arg "Txn.make: negative item id")
    (read_set @ write_set);
  { id; site; read_set; write_set; compute_time; protocol }

let effective_reads t = t.read_set

let size t = List.length t.read_set + List.length t.write_set

let accesses t =
  List.map (fun i -> (i, Op.Read)) t.read_set
  @ List.map (fun i -> (i, Op.Write)) t.write_set

let pp ppf t =
  let pp_items = Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',') Format.pp_print_int in
  Format.fprintf ppf "t%d@@s%d[%a] r{%a} w{%a}" t.id t.site Protocol.pp
    t.protocol pp_items t.read_set pp_items t.write_set
