type t = Two_pl | T_o | Pa

let all = [ Two_pl; T_o; Pa ]

let equal a b =
  match a, b with
  | Two_pl, Two_pl | T_o, T_o | Pa, Pa -> true
  | (Two_pl | T_o | Pa), _ -> false

let rank = function Two_pl -> 0 | T_o -> 1 | Pa -> 2
let compare a b = Int.compare (rank a) (rank b)

let to_string = function Two_pl -> "2PL" | T_o -> "T/O" | Pa -> "PA"
let pp ppf t = Format.pp_print_string ppf (to_string t)

let of_string s =
  match String.lowercase_ascii s with
  | "2pl" | "two_pl" | "twopl" -> Some Two_pl
  | "to" | "t/o" | "t_o" | "tso" -> Some T_o
  | "pa" -> Some Pa
  | _ -> None
