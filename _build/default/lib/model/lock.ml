type mode = Rl | Wl | Srl | Swl

let equal a b =
  match a, b with
  | Rl, Rl | Wl, Wl | Srl, Srl | Swl, Swl -> true
  | (Rl | Wl | Srl | Swl), _ -> false

let to_string = function Rl -> "RL" | Wl -> "WL" | Srl -> "SRL" | Swl -> "SWL"
let pp ppf m = Format.pp_print_string ppf (to_string m)

let is_write_mode = function Wl | Swl -> true | Rl | Srl -> false
let is_semi = function Srl | Swl -> true | Rl | Wl -> false

let conflicts a b = is_write_mode a || is_write_mode b

let to_semi = function Rl -> Srl | Wl -> Swl | Srl -> Srl | Swl -> Swl

type schedule = Normal | Pre_scheduled

let schedule_equal a b =
  match a, b with
  | Normal, Normal | Pre_scheduled, Pre_scheduled -> true
  | (Normal | Pre_scheduled), _ -> false

let schedule_to_string = function
  | Normal -> "normal"
  | Pre_scheduled -> "pre-scheduled"
