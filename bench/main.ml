(* The benchmark binary: regenerates every reproduced experiment table
   (E1-E11, see DESIGN.md section 5 and EXPERIMENTS.md) and then runs
   bechamel micro-benchmarks of the core data structures.

   Run with: dune exec bench/main.exe
   Pass --quick for reduced transaction counts, --micro-only / --exp-only to
   select one half, --audit to statically verify a traced run of every
   system against the paper's invariants before benchmarking. *)

let quick = ref false
let micro_only = ref false
let exp_only = ref false
let audit = ref false

let () =
  let specs =
    [ ("--quick", Arg.Set quick, " reduced transaction counts");
      ("--micro-only", Arg.Set micro_only, " only the micro-benchmarks");
      ("--exp-only", Arg.Set exp_only, " only the experiment tables");
      ("--audit", Arg.Set audit,
       " statically verify a traced run of every system first") ]
  in
  let usage = "usage: dune exec bench/main.exe -- [options]" in
  (* unknown flags and stray positional arguments are hard errors, so a
     misspelled flag can no longer be silently ignored *)
  Arg.parse (Arg.align specs)
    (fun anon -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" anon)))
    usage

let quick = !quick
let micro_only = !micro_only
let exp_only = !exp_only
let audit = !audit

(* ----------------------------------------------------------------- audit *)

let run_audit () =
  print_endline "=== Invariant audit (one traced run per system) ===";
  let spec =
    { Ccdb_workload.Generator.default with
      arrival_rate = 0.15;
      protocol_mix =
        [ (Ccdb_model.Protocol.Two_pl, 1.); (Ccdb_model.Protocol.T_o, 1.);
          (Ccdb_model.Protocol.Pa, 1.) ] }
  in
  let setup = { Ccdb_harness.Driver.default_setup with items = 16 } in
  let n_txns = if quick then 60 else 200 in
  let failed = ref false in
  List.iter
    (fun mode ->
      let r = Ccdb_harness.Driver.run ~setup ~n_txns ~audit:true mode spec in
      let report = Option.get r.audit in
      Printf.printf "%-18s %s\n%!"
        (Ccdb_harness.Driver.mode_name mode)
        (Ccdb_analysis.Report.summary report);
      if not (Ccdb_analysis.Report.is_clean report) then begin
        failed := true;
        Format.printf "%a@." Ccdb_analysis.Report.pp report
      end)
    [ Ccdb_harness.Driver.Pure Ccdb_model.Protocol.Two_pl;
      Ccdb_harness.Driver.Pure Ccdb_model.Protocol.T_o;
      Ccdb_harness.Driver.Pure Ccdb_model.Protocol.Pa;
      Ccdb_harness.Driver.Mvto; Ccdb_harness.Driver.Conservative;
      Ccdb_harness.Driver.Unified; Ccdb_harness.Driver.Unified_full_lock;
      Ccdb_harness.Driver.Dynamic ];
  print_newline ();
  if !failed then begin
    print_endline "audit FAILED";
    exit 1
  end

(* ----------------------------------------------------------- experiments *)

let run_experiments () =
  print_endline "=== Paper reproduction: one table per experiment ===";
  print_endline
    (if quick then "(quick mode: reduced transaction counts)\n" else "");
  List.iter
    (fun o ->
      print_endline (Ccdb_harness.Experiments.render o);
      print_newline ())
    (Ccdb_harness.Experiments.all ~quick ())

(* ------------------------------------------------------ micro-benchmarks *)

let bench_precedence_compare =
  let a = Ccdb_model.Precedence.timestamped ~ts:42 ~site:1 ~txn:7 in
  let b = Ccdb_model.Precedence.queue_local ~ts:42 ~arrival:3 in
  Bechamel.Test.make ~name:"precedence.compare"
    (Bechamel.Staged.stage (fun () ->
         ignore (Ccdb_model.Precedence.compare a b)))

let bench_semi_lock_cycle =
  (* one full request -> grant -> release cycle on a unified queue with a
     resident population of eight transactions *)
  Bechamel.Test.make ~name:"semi_lock_queue.cycle"
    (Bechamel.Staged.stage
       (let counter = ref 0 in
        let q = Core.Semi_lock_queue.create () in
        for i = 1 to 8 do
          ignore
            (Core.Semi_lock_queue.request q ~txn:(1_000_000 + i) ~site:0
               ~protocol:Ccdb_model.Protocol.Pa ~ts:(Some i) ~interval:5
               ~epoch:0 ~op:Ccdb_model.Op.Read)
        done;
        ignore (Core.Semi_lock_queue.grant_ready q ~now:0.);
        fun () ->
          incr counter;
          let txn = !counter in
          ignore
            (Core.Semi_lock_queue.request q ~txn ~site:0
               ~protocol:Ccdb_model.Protocol.T_o
               ~ts:(Some (100 + !counter)) ~interval:5 ~epoch:0
               ~op:Ccdb_model.Op.Read);
          ignore (Core.Semi_lock_queue.grant_ready q ~now:1.);
          ignore (Core.Semi_lock_queue.release q ~txn)))

let bench_lock_table_cycle =
  Bechamel.Test.make ~name:"lock_table.cycle"
    (Bechamel.Staged.stage
       (let counter = ref 0 in
        let t = Ccdb_protocols.Lock_table.create () in
        fun () ->
          incr counter;
          let txn = !counter in
          ignore
            (Ccdb_protocols.Lock_table.request t ~txn ~attempt:0
               ~op:Ccdb_model.Op.Write);
          ignore (Ccdb_protocols.Lock_table.grant_ready t);
          ignore (Ccdb_protocols.Lock_table.release t ~txn ~attempt:0)))

let bench_stl_eval =
  let params =
    { Ccdb_stl.Stl_model.lambda_a = 1.0; lambda_r = 0.04; lambda_w = 0.04;
      q_r = 0.5; k = 3. }
  in
  Bechamel.Test.make ~name:"stl'.evaluate"
    (Bechamel.Staged.stage (fun () ->
         ignore (Ccdb_stl.Stl_model.stl' params ~lambda_loss:0.3 ~u:40.)))

let bench_conflict_check =
  (* serializability check over a 100-transaction, 32-copy execution *)
  let logs =
    let rng = Ccdb_util.Rng.create ~seed:3 in
    List.init 32 (fun copy ->
        ( (copy, 0),
          List.init 24 (fun j ->
              { Ccdb_storage.Store.txn = 1 + Ccdb_util.Rng.int rng 100;
                kind =
                  (if Ccdb_util.Rng.bool rng then Ccdb_model.Op.Read
                   else Ccdb_model.Op.Write);
                at = float_of_int j }) ))
  in
  Bechamel.Test.make ~name:"conflict_graph.check"
    (Bechamel.Staged.stage (fun () ->
         ignore (Ccdb_serial.Check.conflict_serializable logs)))

let bench_heap =
  Bechamel.Test.make ~name:"heap.push100+drain"
    (Bechamel.Staged.stage
       (let rng = Ccdb_util.Rng.create ~seed:9 in
        fun () ->
          let h = Ccdb_util.Heap.create ~cmp:Int.compare in
          for _ = 1 to 100 do
            ignore (Ccdb_util.Heap.push h (Ccdb_util.Rng.int rng 10_000))
          done;
          while Ccdb_util.Heap.pop h <> None do
            ()
          done))

let bench_end_to_end =
  (* a whole small simulation: 40 mixed transactions through the unified
     system, to quiescence *)
  Bechamel.Test.make ~name:"unified.sim-40txn"
    (Bechamel.Staged.stage
       (let spec =
          { Ccdb_workload.Generator.default with
            arrival_rate = 0.2;
            protocol_mix =
              [ (Ccdb_model.Protocol.Two_pl, 1.);
                (Ccdb_model.Protocol.T_o, 1.); (Ccdb_model.Protocol.Pa, 1.) ] }
        in
        let setup =
          { Ccdb_harness.Driver.default_setup with items = 12; sites = 3 }
        in
        fun () ->
          ignore
            (Ccdb_harness.Driver.run ~setup ~n_txns:40
               Ccdb_harness.Driver.Unified spec)))

let run_micro () =
  print_endline "=== Micro-benchmarks (bechamel, ns/op via OLS) ===";
  let tests =
    Bechamel.Test.make_grouped ~name:"ccdb"
      [ bench_precedence_compare; bench_semi_lock_cycle; bench_lock_table_cycle;
        bench_stl_eval; bench_conflict_check; bench_heap; bench_end_to_end ]
  in
  let cfg =
    Bechamel.Benchmark.cfg ~limit:2000
      ~quota:(Bechamel.Time.second (if quick then 0.1 else 0.5))
      ()
  in
  let instances = Bechamel.Toolkit.Instance.[ monotonic_clock ] in
  let raw = Bechamel.Benchmark.all cfg instances tests in
  let ols =
    Bechamel.Analyze.ols ~r_square:true ~bootstrap:0
      ~predictors:[| Bechamel.Measure.run |]
  in
  let results =
    Bechamel.Analyze.all ols Bechamel.Toolkit.Instance.monotonic_clock raw
  in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Bechamel.Analyze.OLS.estimates ols with
          | Some (est :: _) -> est
          | Some [] | None -> Float.nan
        in
        let r2 =
          Option.value ~default:Float.nan (Bechamel.Analyze.OLS.r_square ols)
        in
        (name, ns, r2) :: acc)
      results []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  let table =
    Ccdb_util.Table.create
      ~columns:
        [ ("benchmark", Ccdb_util.Table.Left); ("ns/op", Ccdb_util.Table.Right);
          ("r^2", Ccdb_util.Table.Right) ]
  in
  List.iter
    (fun (name, ns, r2) ->
      Ccdb_util.Table.add_row table
        [ name; Ccdb_util.Table.fmt_float ~decimals:1 ns;
          Ccdb_util.Table.fmt_float ~decimals:4 r2 ])
    rows;
  print_string (Ccdb_util.Table.render table)

let () =
  if audit then run_audit ();
  if not micro_only then run_experiments ();
  if not exp_only then run_micro ()
