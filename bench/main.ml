(* The benchmark binary: regenerates every reproduced experiment table
   (E1-E16 and X1-X7, see DESIGN.md section 5 and EXPERIMENTS.md) and then
   runs bechamel micro-benchmarks of the core data structures.

   Run with: dune exec bench/main.exe
   Pass --quick for reduced transaction counts, --micro-only / --exp-only to
   select one half, --audit to statically verify a traced run of every
   system against the paper's invariants before benchmarking, and
   --insights FILE to also write the canonical workload-insights document
   (INSIGHTS.json, schema ccdb-insights/1 — see OBSERVABILITY.md). *)

let quick = ref false
let micro_only = ref false
let exp_only = ref false
let audit = ref false
let jobs = ref (Ccdb_harness.Parallel.default_jobs ())
let shards = ref 1
let json_path = ref None
let insights_path = ref None

let () =
  let specs =
    [ ("--quick", Arg.Set quick, " reduced transaction counts");
      ("--micro-only", Arg.Set micro_only, " only the micro-benchmarks");
      ("--exp-only", Arg.Set exp_only, " only the experiment tables");
      ("--audit", Arg.Set audit,
       " statically verify a traced run of every system first");
      ("--jobs", Arg.Set_int jobs,
       "N fan experiment points across N domains (default: recommended \
        domain count)");
      ("--shards", Arg.Set_int shards,
       "N run every experiment on an N-shard engine (default 1; with \
        --json the suite is additionally timed at 1/2/4 shards)");
      ("--json", Arg.String (fun p -> json_path := Some p),
       "FILE write a machine-readable baseline (ns/op, r^2, wall-clocks) \
        to FILE");
      ("--insights", Arg.String (fun p -> insights_path := Some p),
       "FILE write the canonical workload-insights document (the E14 \
        measured-adaptive run, schema ccdb-insights/1) to FILE") ]
  in
  let usage = "usage: dune exec bench/main.exe -- [options]" in
  (* unknown flags and stray positional arguments are hard errors, so a
     misspelled flag can no longer be silently ignored *)
  Arg.parse (Arg.align specs)
    (fun anon -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" anon)))
    usage

let quick = !quick
let micro_only = !micro_only
let exp_only = !exp_only
let audit = !audit
let jobs = max 1 !jobs
let shards = max 1 !shards
let json_path = !json_path
let insights_path = !insights_path

let () = if shards > 1 then Ccdb_harness.Driver.set_default_shards shards

(* ----------------------------------------------------------------- audit *)

let run_audit () =
  print_endline
    "=== Invariant audit (one differential batch/stream run per system) ===";
  let spec =
    { Ccdb_workload.Generator.default with
      arrival_rate = 0.15;
      protocol_mix =
        [ (Ccdb_model.Protocol.Two_pl, 1.); (Ccdb_model.Protocol.T_o, 1.);
          (Ccdb_model.Protocol.Pa, 1.) ] }
  in
  let setup = { Ccdb_harness.Driver.default_setup with items = 16 } in
  let n_txns = if quick then 60 else 200 in
  let failed = ref false in
  List.iter
    (fun mode ->
      let r =
        Ccdb_harness.Driver.run ~setup ~n_txns ~audit:true
          ~audit_path:Ccdb_harness.Driver.Differential mode spec
      in
      let report = Option.get r.audit in
      Printf.printf "%-18s %s\n%!"
        (Ccdb_harness.Driver.mode_name mode)
        (Ccdb_analysis.Report.summary report);
      if not (Ccdb_analysis.Report.is_clean report) then begin
        failed := true;
        Format.printf "%a@." Ccdb_analysis.Report.pp report
      end)
    [ Ccdb_harness.Driver.Pure Ccdb_model.Protocol.Two_pl;
      Ccdb_harness.Driver.Pure Ccdb_model.Protocol.T_o;
      Ccdb_harness.Driver.Pure Ccdb_model.Protocol.Pa;
      Ccdb_harness.Driver.Mvto; Ccdb_harness.Driver.Conservative;
      Ccdb_harness.Driver.Unified; Ccdb_harness.Driver.Unified_full_lock;
      Ccdb_harness.Driver.Dynamic ];
  print_newline ();
  if !failed then begin
    print_endline "audit FAILED";
    exit 1
  end

(* ----------------------------------------------------------- experiments *)

type exp_stats = {
  n_experiments : int;
  n_points : int;
  serial_s : float;
  (* (jobs, wall-clock, tables byte-identical to serial) when a parallel
     pass ran as well *)
  parallel : (int * float * bool) option;
  (* (shards, wall-clock, tables byte-identical to the serial pass) for
     the 1/2/4-shard sweep that --json triggers *)
  sharded : (int * float * bool) list;
}

let render_all outcomes =
  String.concat ""
    (List.map (fun o -> Ccdb_harness.Experiments.render o ^ "\n") outcomes)

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* The determinism sweep behind BENCH.json's "sharded" section: the whole
   suite re-run on a 2- and 4-shard engine (single job, so the only change
   is the engine partitioning) and compared byte-for-byte against the
   serial pass.  Setups that pin their own shard count (E15) are immune to
   the default, so their tables compare too. *)
let run_sharded serial_s serial_txt =
  let passes =
    List.map
      (fun s ->
        if s = 1 && shards = 1 then (1, serial_s, true)
        else begin
          Ccdb_harness.Driver.set_default_shards (if s = 1 then 0 else s);
          let outs, secs =
            timed (fun () -> Ccdb_harness.Parallel.experiments ~quick ~jobs:1 ())
          in
          let identical = String.equal (render_all outs) serial_txt in
          (s, secs, identical)
        end)
      [ 1; 2; 4 ]
  in
  Ccdb_harness.Driver.set_default_shards (if shards > 1 then shards else 0);
  List.iter
    (fun (s, secs, identical) ->
      Printf.printf "(suite at %d shard%s: %.2fs, tables %s)\n" s
        (if s = 1 then "" else "s")
        secs
        (if identical then "byte-identical" else "DIFFER"))
    passes;
  print_newline ();
  passes

(* With [--json] the suite runs twice — serially and at [jobs] domains — so
   the baseline records both wall-clocks and pins that the parallel tables
   are byte-identical; the 1/2/4-shard sweep then re-runs it on the
   partitioned engine.  Without it the suite runs once at [jobs]. *)
let run_experiments () =
  print_endline "=== Paper reproduction: one table per experiment ===";
  print_endline
    (if quick then "(quick mode: reduced transaction counts)\n" else "");
  let staged = Ccdb_harness.Experiments.staged ~quick () in
  let n_experiments = List.length staged in
  let n_points =
    List.fold_left
      (fun acc s -> acc + Ccdb_harness.Experiments.points_count s)
      0 staged
  in
  let want_both = json_path <> None && jobs > 1 in
  if want_both || jobs <= 1 then begin
    let serial, serial_s =
      timed (fun () -> Ccdb_harness.Parallel.experiments ~quick ~jobs:1 ())
    in
    let serial_txt = render_all serial in
    print_string serial_txt;
    let parallel =
      if not want_both then None
      else begin
        let par, par_s =
          timed (fun () -> Ccdb_harness.Parallel.experiments ~quick ~jobs ())
        in
        let identical = String.equal (render_all par) serial_txt in
        Printf.printf
          "(suite wall-clock: %.2fs serial, %.2fs at %d jobs; tables %s)\n\n"
          serial_s par_s jobs
          (if identical then "byte-identical" else "DIFFER");
        Some (jobs, par_s, identical)
      end
    in
    let sharded =
      if json_path = None then [] else run_sharded serial_s serial_txt
    in
    { n_experiments; n_points; serial_s; parallel; sharded }
  end
  else begin
    let outs, par_s =
      timed (fun () -> Ccdb_harness.Parallel.experiments ~quick ~jobs ())
    in
    print_string (render_all outs);
    (* a single parallel pass has no serial wall-clock to compare against;
       record what ran *)
    { n_experiments; n_points; serial_s = par_s;
      parallel = Some (jobs, par_s, true); sharded = [] }
  end

(* ------------------------------------------------------ micro-benchmarks *)

let bench_precedence_compare =
  let a = Ccdb_model.Precedence.timestamped ~ts:42 ~site:1 ~txn:7 in
  let b = Ccdb_model.Precedence.queue_local ~ts:42 ~arrival:3 in
  Bechamel.Test.make ~name:"precedence.compare"
    (Bechamel.Staged.stage (fun () ->
         ignore (Ccdb_model.Precedence.compare a b)))

let bench_semi_lock_cycle =
  (* one full request -> grant -> release cycle on a unified queue with a
     resident population of eight transactions *)
  Bechamel.Test.make ~name:"semi_lock_queue.cycle"
    (Bechamel.Staged.stage
       (let counter = ref 0 in
        let q = Core.Semi_lock_queue.create () in
        for i = 1 to 8 do
          ignore
            (Core.Semi_lock_queue.request q ~txn:(1_000_000 + i) ~site:0
               ~protocol:Ccdb_model.Protocol.Pa ~ts:(Some i) ~interval:5
               ~epoch:0 ~op:Ccdb_model.Op.Read)
        done;
        ignore (Core.Semi_lock_queue.grant_ready q ~now:0.);
        fun () ->
          incr counter;
          let txn = !counter in
          ignore
            (Core.Semi_lock_queue.request q ~txn ~site:0
               ~protocol:Ccdb_model.Protocol.T_o
               ~ts:(Some (100 + !counter)) ~interval:5 ~epoch:0
               ~op:Ccdb_model.Op.Read);
          ignore (Core.Semi_lock_queue.grant_ready q ~now:1.);
          ignore (Core.Semi_lock_queue.release q ~txn)))

let bench_lock_table_cycle =
  (* one request -> grant sweep -> release cycle on a contended copy: a
     granted writer with sixteen readers queued behind it — the canonical
     hot-copy pattern, and the one where the grant sweep's complexity
     actually shows (every waiting read is checked against all the
     non-conflicting reads ahead of it before the blocking writer) *)
  Bechamel.Test.make ~name:"lock_table.cycle"
    (Bechamel.Staged.stage
       (let counter = ref 0 in
        let t = Ccdb_protocols.Lock_table.create () in
        let () =
          ignore
            (Ccdb_protocols.Lock_table.request t ~txn:1_000_000 ~attempt:0
               ~op:Ccdb_model.Op.Write);
          for i = 1 to 16 do
            ignore
              (Ccdb_protocols.Lock_table.request t ~txn:(1_000_000 + i)
                 ~attempt:0 ~op:Ccdb_model.Op.Read)
          done;
          ignore (Ccdb_protocols.Lock_table.grant_ready t)
        in
        fun () ->
          incr counter;
          let txn = !counter in
          ignore
            (Ccdb_protocols.Lock_table.request t ~txn ~attempt:0
               ~op:Ccdb_model.Op.Read);
          ignore (Ccdb_protocols.Lock_table.grant_ready t);
          ignore (Ccdb_protocols.Lock_table.release t ~txn ~attempt:0)))

let bench_wal_append =
  (* one record forced to stable storage; the log is recycled every 4096
     appends so the measurement never degenerates into allocator pressure
     from an unbounded log *)
  Bechamel.Test.make ~name:"wal.append"
    (Bechamel.Staged.stage
       (let w = ref (Ccdb_storage.Wal.create ~sites:4) in
        let counter = ref 0 in
        fun () ->
          incr counter;
          if !counter land 4095 = 0 then w := Ccdb_storage.Wal.create ~sites:4;
          Ccdb_storage.Wal.append !w ~site:(!counter land 3) ~at:1.
            (Ccdb_storage.Wal.Grant
               { txn = !counter; item = 3; op = Ccdb_model.Op.Read;
                 ts = Some !counter })))

let bench_wal_replay =
  (* recovery scan of a 512-record site log shaped like a real one: mostly
     completed admit/grant/release triples, a tail of live grants and one
     in-doubt 2PC round, so every replay bucket is exercised *)
  Bechamel.Test.make ~name:"wal.replay-512"
    (Bechamel.Staged.stage
       (let w = Ccdb_storage.Wal.create ~sites:1 in
        let append r = Ccdb_storage.Wal.append w ~site:0 ~at:1. r in
        let () =
          for txn = 1 to 160 do
            append
              (Ccdb_storage.Wal.Admit
                 { txn; item = txn mod 24; op = Ccdb_model.Op.Read; ts = txn });
            append
              (Ccdb_storage.Wal.Grant
                 { txn; item = txn mod 24; op = Ccdb_model.Op.Read;
                   ts = Some txn });
            append
              (Ccdb_storage.Wal.Release
                 { txn; item = txn mod 24; op = Ccdb_model.Op.Read;
                   aborted = false })
          done;
          for txn = 161 to 185 do
            append
              (Ccdb_storage.Wal.Grant
                 { txn; item = txn mod 24; op = Ccdb_model.Op.Write;
                   ts = None })
          done;
          for i = 0 to 2 do
            append
              (Ccdb_storage.Wal.Prewrite
                 { txn = 200; round = 0;
                   action =
                     { Ccdb_storage.Wal.item = i; op = Ccdb_model.Op.Write;
                       value = Some 7; attempt = 0; granted_at = 1. } })
          done;
          append (Ccdb_storage.Wal.Vote { txn = 200; round = 0; coordinator = 0 });
          for txn = 201 to 204 do
            append
              (Ccdb_storage.Wal.Coord_commit
                 { txn; round = 0; participants = [ 0; 1 ] });
            append (Ccdb_storage.Wal.Coord_end { txn; round = 0 })
          done
        in
        fun () -> ignore (Ccdb_storage.Wal.replay w ~site:0)))

let bench_stl_eval =
  let params =
    { Ccdb_stl.Stl_model.lambda_a = 1.0; lambda_r = 0.04; lambda_w = 0.04;
      q_r = 0.5; k = 3. }
  in
  Bechamel.Test.make ~name:"stl'.evaluate"
    (Bechamel.Staged.stage (fun () ->
         ignore (Ccdb_stl.Stl_model.stl' params ~lambda_loss:0.3 ~u:40.)))

let bench_conflict_check =
  (* serializability check over a 100-transaction, 32-copy execution *)
  let logs =
    let rng = Ccdb_util.Rng.create ~seed:3 in
    List.init 32 (fun copy ->
        ( (copy, 0),
          List.init 24 (fun j ->
              { Ccdb_storage.Store.txn = 1 + Ccdb_util.Rng.int rng 100;
                kind =
                  (if Ccdb_util.Rng.bool rng then Ccdb_model.Op.Read
                   else Ccdb_model.Op.Write);
                at = float_of_int j }) ))
  in
  Bechamel.Test.make ~name:"conflict_graph.check"
    (Bechamel.Staged.stage (fun () ->
         ignore (Ccdb_serial.Check.conflict_serializable logs)))

let bench_incremental_edge =
  (* one edge insertion + Pearce-Kelly acyclicity re-check on a live
     incremental graph over the same 100-transaction population as
     conflict_graph.check; the graph is recycled every 4096 insertions so
     the measurement never degenerates into an ever-denser graph *)
  Bechamel.Test.make ~name:"conflict_graph.check-incremental"
    (Bechamel.Staged.stage
       (let rng = ref (Ccdb_util.Rng.create ~seed:3) in
        let g = ref (Ccdb_serial.Incremental.create ()) in
        let counter = ref 0 in
        let prov =
          { Ccdb_serial.Incremental.item = 0; site = 0;
            from_op = Ccdb_model.Op.Write; to_op = Ccdb_model.Op.Read }
        in
        fun () ->
          incr counter;
          if !counter land 4095 = 0 then begin
            g := Ccdb_serial.Incremental.create ();
            rng := Ccdb_util.Rng.create ~seed:3
          end;
          let src = 1 + Ccdb_util.Rng.int !rng 100 in
          let dst = 1 + Ccdb_util.Rng.int !rng 100 in
          ignore (Ccdb_serial.Incremental.add_edge !g ~src ~dst ~prov)))

let bench_stream_feed =
  (* one real event through the whole streaming analyzer (semi-lock,
     precedence and theorem audits plus the incremental conflict graph
     with prefix GC); the events are a recorded 40-transaction unified
     run and the analyzer state is recreated at wrap *)
  let setup =
    { Ccdb_harness.Driver.default_setup with items = 12; sites = 3 }
  in
  let events =
    let tr = ref None in
    let spec =
      { Ccdb_workload.Generator.default with
        arrival_rate = 0.2;
        protocol_mix =
          [ (Ccdb_model.Protocol.Two_pl, 1.); (Ccdb_model.Protocol.T_o, 1.);
            (Ccdb_model.Protocol.Pa, 1.) ] }
    in
    ignore
      (Ccdb_harness.Driver.run ~setup ~n_txns:40
         ~observer:(fun rt -> tr := Some (Ccdb_harness.Trace.attach rt))
         Ccdb_harness.Driver.Unified spec);
    Ccdb_harness.Trace.to_array (Option.get !tr)
  in
  let catalog () =
    Ccdb_storage.Catalog.create ~items:setup.items ~sites:setup.sites
      ~replication:setup.replication
  in
  Bechamel.Test.make ~name:"analysis.stream-feed"
    (Bechamel.Staged.stage
       (let st = ref (Ccdb_analysis.Stream.create ~catalog:(catalog ()) ()) in
        let i = ref 0 in
        fun () ->
          if !i >= Array.length events then begin
            i := 0;
            st := Ccdb_analysis.Stream.create ~catalog:(catalog ()) ()
          end;
          ignore (Ccdb_analysis.Stream.feed !st events.(!i));
          incr i))

let bench_heap =
  Bechamel.Test.make ~name:"heap.push100+drain"
    (Bechamel.Staged.stage
       (let rng = Ccdb_util.Rng.create ~seed:9 in
        fun () ->
          let h = Ccdb_util.Heap.create ~cmp:Int.compare in
          for _ = 1 to 100 do
            ignore (Ccdb_util.Heap.push h (Ccdb_util.Rng.int rng 10_000))
          done;
          while Ccdb_util.Heap.pop h <> None do
            ()
          done))

let bench_end_to_end =
  (* a whole small simulation: 40 mixed transactions through the unified
     system, to quiescence *)
  Bechamel.Test.make ~name:"unified.sim-40txn"
    (Bechamel.Staged.stage
       (let spec =
          { Ccdb_workload.Generator.default with
            arrival_rate = 0.2;
            protocol_mix =
              [ (Ccdb_model.Protocol.Two_pl, 1.);
                (Ccdb_model.Protocol.T_o, 1.); (Ccdb_model.Protocol.Pa, 1.) ] }
        in
        let setup =
          { Ccdb_harness.Driver.default_setup with items = 12; sites = 3 }
        in
        fun () ->
          ignore
            (Ccdb_harness.Driver.run ~setup ~n_txns:40
               Ccdb_harness.Driver.Unified spec)))

let bench_sharded_sim =
  (* the same 40-transaction unified simulation on a 2-shard engine: the
     overhead (or win) of the conservative-window merge relative to
     unified.sim-40txn is the sharding cost the DESIGN.md section 14
     roadmap tracks *)
  Bechamel.Test.make ~name:"engine.sharded-sim"
    (Bechamel.Staged.stage
       (let spec =
          { Ccdb_workload.Generator.default with
            arrival_rate = 0.2;
            protocol_mix =
              [ (Ccdb_model.Protocol.Two_pl, 1.);
                (Ccdb_model.Protocol.T_o, 1.); (Ccdb_model.Protocol.Pa, 1.) ] }
        in
        let setup =
          { Ccdb_harness.Driver.default_setup with
            items = 12; sites = 3; shards = 2 }
        in
        fun () ->
          ignore
            (Ccdb_harness.Driver.run ~setup ~n_txns:40
               Ccdb_harness.Driver.Unified spec)))

(* Atomic-commitment round cost: a durable (wipe=true, otherwise
   fault-free) run of 16 multi-operation transactions through the unified
   system, so every commit drives a full round of the selected engine —
   presumed-abort 2PC vs Paxos Commit over three acceptors (f = 1).  Both
   rows share the workload and the durable-run fixed costs (WAL forces,
   vote collection), so their difference is the consensus premium
   DESIGN.md section 15 quantifies: one extra phase-2a/2b exchange per
   participant vote on the ballot-0 fast path. *)
let bench_commit_round name commit =
  let spec =
    { Ccdb_workload.Generator.default with
      arrival_rate = 0.2;
      size_min = 2;
      size_max = 3;
      protocol_mix =
        [ (Ccdb_model.Protocol.Two_pl, 1.); (Ccdb_model.Protocol.T_o, 1.);
          (Ccdb_model.Protocol.Pa, 1.) ] }
  in
  let setup =
    { Ccdb_harness.Driver.default_setup with items = 12; sites = 3; commit }
  in
  let faults =
    match Ccdb_sim.Fault_plan.of_string "wipe=true,seed=7" with
    | Ok p -> p
    | Error e -> failwith e
  in
  Bechamel.Test.make ~name
    (Bechamel.Staged.stage (fun () ->
         ignore
           (Ccdb_harness.Driver.run ~setup ~n_txns:16 ~faults
              Ccdb_harness.Driver.Unified spec)))

let bench_2pc_round = bench_commit_round "commit.2pc-round" Ccdb_protocols.Runtime.Two_pc

let bench_paxos_round =
  bench_commit_round "commit.paxos-round" (Ccdb_protocols.Runtime.Paxos { f = 1 })

(* A micro-benchmark result after the confidence pass below. *)
type micro_row = {
  m_name : string;
  m_ns : float;        (* ns per operation, OLS slope over (runs, time) *)
  m_r2 : float;        (* r^2 of that single-predictor fit *)
  m_kept : int;        (* samples surviving the outlier trim *)
  m_dropped : int;     (* samples trimmed as outliers *)
}

let confidence_line = 0.9

(* Bechamel's stock OLS fits every raw sample, including the cold-start
   ones taken at the smallest iteration counts and any sample a GC slice or
   scheduler preemption landed in — which is exactly what left wal.append
   at r^2 = 0.68 and analysis.stream-feed at 0.78 in the ccdb-bench/3
   baseline.  This pass (a) drops the earliest eighth of the samples as
   warmup on top of the discarded warmup run, then (b) trims samples whose
   per-iteration cost sits more than 5 MADs (with a 5% relative floor, so
   ultra-stable tests keep their samples) from the median, and (c) fits
   time = overhead + ns_per_op * runs — the intercept absorbs the fixed
   per-sample measurement cost (clock reads, loop setup) that otherwise
   wrecks the fit for operations in the tens of nanoseconds.  Rows still
   under the 0.9 line are flagged in the table and in BENCH.json rather
   than silently recorded. *)
let analyze_raw (b : Bechamel.Benchmark.t) =
  let label =
    Bechamel.Measure.label Bechamel.Toolkit.Instance.monotonic_clock
  in
  let samples =
    Array.to_list b.Bechamel.Benchmark.lr
    |> List.filter_map (fun m ->
           let runs = Bechamel.Measurement_raw.run m in
           if runs <= 0. then None
           else Some (runs, Bechamel.Measurement_raw.get ~label m))
  in
  (* never warm-drop more than half of what bechamel managed to take: a
     slow test under a large post-experiments heap can yield only a
     handful of samples *)
  let warm = min (max 3 (List.length samples / 8)) (List.length samples / 2) in
  let samples = List.filteri (fun i _ -> i >= warm) samples in
  let median l =
    let a = Array.of_list l in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let med = median (List.map (fun (r, t) -> t /. r) samples) in
  let mad =
    median (List.map (fun (r, t) -> Float.abs ((t /. r) -. med)) samples)
  in
  let band = Float.max (5. *. mad) (0.05 *. Float.abs med) in
  let kept, rejected =
    List.partition
      (fun (r, t) -> Float.abs ((t /. r) -. med) <= band)
      samples
  in
  let kept = if kept = [] then samples else kept in
  let sum f = List.fold_left (fun acc x -> acc +. f x) 0. kept in
  let n = float_of_int (List.length kept) in
  let sx = sum (fun (r, _) -> r) and sy = sum (fun (_, t) -> t) in
  let sxx = sum (fun (r, _) -> r *. r) in
  let sxy = sum (fun (r, t) -> r *. t) in
  let denom = (n *. sxx) -. (sx *. sx) in
  let ns =
    if denom = 0. then sy /. Float.max sx 1.
    else ((n *. sxy) -. (sx *. sy)) /. denom
  in
  let intercept = (sy -. (ns *. sx)) /. n in
  let mean_t = sy /. n in
  let ss_res =
    sum (fun (r, t) ->
        let e = t -. (intercept +. (ns *. r)) in
        e *. e)
  in
  let ss_tot =
    sum (fun (_, t) ->
        let d = t -. mean_t in
        d *. d)
  in
  let r2 = if ss_tot = 0. then 1. else 1. -. (ss_res /. ss_tot) in
  (ns, r2, List.length kept, List.length rejected)

let run_micro () =
  print_endline
    "=== Micro-benchmarks (warmed, outlier-trimmed, intercept-aware OLS) ===";
  let tests =
    Bechamel.Test.make_grouped ~name:"ccdb"
      [ bench_precedence_compare; bench_semi_lock_cycle; bench_lock_table_cycle;
        bench_wal_append; bench_wal_replay; bench_stl_eval;
        bench_conflict_check; bench_incremental_edge; bench_stream_feed;
        bench_heap; bench_end_to_end; bench_sharded_sim; bench_2pc_round;
        bench_paxos_round ]
  in
  let instances = Bechamel.Toolkit.Instance.[ monotonic_clock ] in
  (* discarded warmup pass: every staged closure runs until code, caches
     and branch predictors are hot before the measured pass starts *)
  let warm_cfg =
    Bechamel.Benchmark.cfg ~limit:500
      ~quota:(Bechamel.Time.second (if quick then 0.02 else 0.1))
      ()
  in
  ignore (Bechamel.Benchmark.all warm_cfg instances tests);
  (* a 10% geometric run-count growth from a 10-iteration start gives the
     regression a wide leverage range within the quota (the stock 1%
     growth keeps every sample at nearly the same x, so one noisy sample
     wrecked r^2 for the nanosecond-scale tests) *)
  let cfg =
    Bechamel.Benchmark.cfg ~limit:2000 ~start:10 ~sampling:(`Geometric 1.1)
      ~quota:(Bechamel.Time.second (if quick then 0.1 else 0.5))
      ()
  in
  let raw = Bechamel.Benchmark.all cfg instances tests in
  let rows =
    Hashtbl.fold
      (fun name b acc ->
        let ns, r2, kept, dropped = analyze_raw b in
        { m_name = name; m_ns = ns; m_r2 = r2; m_kept = kept;
          m_dropped = dropped }
        :: acc)
      raw []
    |> List.sort (fun a b -> compare a.m_name b.m_name)
  in
  let table =
    Ccdb_util.Table.create
      ~columns:
        [ ("benchmark", Ccdb_util.Table.Left); ("ns/op", Ccdb_util.Table.Right);
          ("r^2", Ccdb_util.Table.Right);
          ("samples", Ccdb_util.Table.Right);
          ("trimmed", Ccdb_util.Table.Right);
          ("note", Ccdb_util.Table.Left) ]
  in
  List.iter
    (fun r ->
      Ccdb_util.Table.add_row table
        [ r.m_name; Ccdb_util.Table.fmt_float ~decimals:1 r.m_ns;
          Ccdb_util.Table.fmt_float ~decimals:4 r.m_r2;
          string_of_int r.m_kept; string_of_int r.m_dropped;
          (if r.m_r2 < confidence_line then "LOW CONFIDENCE" else "") ])
    rows;
  print_string (Ccdb_util.Table.render table);
  rows

(* ------------------------------------------------------------------ json *)

let write_json path ~exp ~micro =
  let open Ccdb_util.Json in
  let micro_j =
    match micro with
    | None -> Null
    | Some rows ->
      List
        (List.map
           (fun r ->
             Obj
               [ ("name", Str r.m_name); ("ns_per_op", Num r.m_ns);
                 ("r_square", Num r.m_r2);
                 ("samples_kept", Num (float_of_int r.m_kept));
                 ("outliers_trimmed", Num (float_of_int r.m_dropped));
                 ("low_confidence", Bool (r.m_r2 < confidence_line)) ])
           rows)
  in
  let exp_j =
    match exp with
    | None -> Null
    | Some e ->
      Obj
        ([ ("count", Num (float_of_int e.n_experiments));
           ("points", Num (float_of_int e.n_points));
           ("serial_wall_clock_s", Num e.serial_s) ]
         @ (match e.parallel with
           | None -> []
           | Some (n, par_s, identical) ->
             [ ("parallel_jobs", Num (float_of_int n));
               ("parallel_wall_clock_s", Num par_s);
               ("speedup", Num (e.serial_s /. par_s));
               ("identical_tables", Bool identical) ])
         @
         match e.sharded with
         | [] -> []
         | passes ->
           [ ( "sharded",
               List
                 (List.map
                    (fun (s, secs, identical) ->
                      Obj
                        [ ("shards", Num (float_of_int s));
                          ("wall_clock_s", Num secs);
                          ("identical_tables", Bool identical) ])
                    passes) ) ])
  in
  let doc =
    Obj
      [ ("schema", Str "ccdb-bench/5");
        ("quick", Bool quick);
        (* Parallel.cores: the parallelism actually available, so a
           speedup <= 1 here reads as "cores-limited", not "overhead" *)
        ("cores", Num (float_of_int (Ccdb_harness.Parallel.cores ())));
        ("jobs", Num (float_of_int jobs));
        ("shards", Num (float_of_int shards));
        ("micro", micro_j);
        ("experiments", exp_j) ]
  in
  let oc = open_out path in
  output_string oc (to_string ~indent:2 doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "(wrote %s)\n" path

(* -------------------------------------------------------------- insights *)

(* The canonical insights document: the "dynamic measured" row of E14
   (phase-change workload, measured-lambda adaptivity with reselection),
   observed by the insights collector and emitted as ccdb-insights/1.
   Deterministic for the pinned seed, so the committed INSIGHTS.json can be
   regenerated byte-identically; the test suite validates its schema. *)
let run_insights path =
  let calm =
    { Ccdb_workload.Generator.default with arrival_rate = 0.15 }
  in
  let storm =
    { Ccdb_workload.Generator.default with
      arrival_rate = 0.3;
      size_min = 1;
      size_max = 1;
      read_fraction = 0.;
      access = Ccdb_workload.Generator.Zipf 1.0 }
  in
  (* always full size: this is the pinned artifact E14 documents, and the
     run is cheap (700 transactions) even under --quick *)
  let phases = [ (calm, 400); (storm, 300) ] in
  let setup =
    { Ccdb_harness.Driver.default_setup with
      items = 24;
      adaptive = Ccdb_harness.Driver.Measured 400.;
      reselect = true }
  in
  let collector = ref None in
  ignore
    (Ccdb_harness.Driver.run_phases ~setup
       ~observer:(fun rt ->
         collector := Some (Ccdb_insights.Collector.attach ~window:500. rt))
       Ccdb_harness.Driver.Dynamic phases);
  let doc = Ccdb_insights.Collector.to_json (Option.get !collector) in
  (match Ccdb_insights.Collector.validate doc with
   | Ok () -> ()
   | Error e ->
     Printf.eprintf "insights document failed its own schema check: %s\n" e;
     exit 1);
  let oc = open_out path in
  output_string oc (Ccdb_util.Json.to_string ~indent:2 doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "(wrote %s)\n" path

let () =
  if audit then run_audit ();
  (match insights_path with None -> () | Some path -> run_insights path);
  (* micros run BEFORE the experiment suite: bechamel stabilizes the GC
     before every sample, which scales with the live major heap — after a
     full suite pass the stabilization eats the whole quota and leaves
     two polluted samples per test *)
  let micro = if not exp_only then Some (run_micro ()) else None in
  let exp = if not micro_only then Some (run_experiments ()) else None in
  match json_path with
  | None -> ()
  | Some path -> write_json path ~exp ~micro
